package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"dnscde/internal/netsim"
)

// Parse errors. Every parse failure wraps ErrParse, so callers can
// distinguish bad grammar from I/O failures.
var ErrParse = errors.New("scenario: parse error")

// maxScenarioBytes bounds a scenario file; the grammar describes
// topologies, not data, so anything larger is a mistake (or a fuzzer).
const maxScenarioBytes = 1 << 20

// Parse reads a scenario file and returns the validated scenario.
//
// The grammar is zone-file flavoured: ';' starts a comment, '$'
// directives carry scalar metadata, and stanzas are parenthesised
// blocks with one "key value..." setting per line:
//
//	; open resolver with 4 hidden caches
//	$SCENARIO open-resolver-4
//	$SEED     42
//	$TRIALS   3
//
//	platform target (
//	    caches   4
//	    ingress  2
//	    egress   6
//	    selector random
//	    link     oneway=2ms jitter=1ms loss=0.01
//	    faults   burst=0.05:4,servfail=0.02
//	)
//
//	workload direct (
//	    queries    24
//	    replicates 2
//	)
//
// The parser is strict: unknown directives, unknown stanza keys,
// duplicate keys, values out of range and unterminated stanzas are all
// errors carrying the offending line number.
func Parse(r io.Reader) (*Scenario, error) {
	p := &parser{s: &Scenario{}}
	scanner := bufio.NewScanner(io.LimitReader(r, maxScenarioBytes+1))
	scanner.Buffer(make([]byte, 0, 4096), 256*1024)
	read := 0
	for scanner.Scan() {
		p.lineNo++
		read += len(scanner.Bytes()) + 1
		if read > maxScenarioBytes {
			return nil, fmt.Errorf("%w: file exceeds %d bytes", ErrParse, maxScenarioBytes)
		}
		if err := p.line(scanner.Text()); err != nil {
			return nil, fmt.Errorf("line %d: %w", p.lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	if p.block != "" {
		return nil, fmt.Errorf("%w: unterminated %s stanza opened on line %d", ErrParse, p.block, p.blockLine)
	}
	if err := p.s.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	return p.s, nil
}

// ParseString is Parse over a string.
func ParseString(text string) (*Scenario, error) {
	return Parse(strings.NewReader(text))
}

type parser struct {
	s      *Scenario
	lineNo int
	// block is "" at top level, "platform", "workload" or "campaign"
	// inside a stanza.
	block     string
	blockLine int
	keys      map[string]bool // keys seen in the current stanza
	dirs      map[string]bool // $ directives seen
	plat      *PlatformDef
	work      *WorkloadDef
	camp      *CampaignDef
}

// stripComment removes a ';' comment.
func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		return line[:i]
	}
	return line
}

func (p *parser) line(raw string) error {
	line := strings.TrimSpace(stripComment(raw))
	if line == "" {
		return nil
	}
	fields := strings.Fields(line)

	if p.block != "" {
		return p.stanzaLine(fields)
	}

	switch key := fields[0]; {
	case strings.HasPrefix(key, "$"):
		return p.directive(fields)
	case key == "platform":
		if len(fields) != 3 || fields[2] != "(" {
			return fmt.Errorf("%w: want 'platform <name> ('", ErrParse)
		}
		p.openBlock("platform")
		p.s.Platforms = append(p.s.Platforms, PlatformDef{Name: fields[1]})
		p.plat = &p.s.Platforms[len(p.s.Platforms)-1]
		return nil
	case key == "workload":
		if len(fields) != 3 || fields[2] != "(" {
			return fmt.Errorf("%w: want 'workload <kind> ('", ErrParse)
		}
		p.openBlock("workload")
		p.s.Workloads = append(p.s.Workloads, WorkloadDef{Kind: Kind(fields[1])})
		p.work = &p.s.Workloads[len(p.s.Workloads)-1]
		return nil
	case key == "campaign":
		if len(fields) != 2 || fields[1] != "(" {
			return fmt.Errorf("%w: want 'campaign ('", ErrParse)
		}
		if p.s.Campaign != nil {
			return fmt.Errorf("%w: duplicate campaign stanza", ErrParse)
		}
		p.openBlock("campaign")
		p.s.Campaign = &CampaignDef{}
		p.camp = p.s.Campaign
		return nil
	default:
		return fmt.Errorf("%w: unexpected %q at top level (want a $ directive, 'platform', 'workload' or 'campaign')", ErrParse, key)
	}
}

func (p *parser) openBlock(kind string) {
	p.block = kind
	p.blockLine = p.lineNo
	p.keys = map[string]bool{}
}

func (p *parser) directive(fields []string) error {
	name := strings.ToUpper(fields[0])
	if p.dirs == nil {
		p.dirs = map[string]bool{}
	}
	if p.dirs[name] {
		return fmt.Errorf("%w: duplicate directive %s", ErrParse, name)
	}
	p.dirs[name] = true
	if len(fields) != 2 {
		return fmt.Errorf("%w: %s wants exactly one argument", ErrParse, name)
	}
	switch name {
	case "$SCENARIO":
		p.s.Name = fields[1]
	case "$SEED":
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("%w: $SEED wants a positive integer, have %q", ErrParse, fields[1])
		}
		p.s.Seed = v
	case "$TRIALS":
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("%w: $TRIALS wants an integer, have %q", ErrParse, fields[1])
		}
		p.s.Trials = v
	default:
		return fmt.Errorf("%w: unknown directive %s", ErrParse, name)
	}
	return nil
}

func (p *parser) stanzaLine(fields []string) error {
	if fields[0] == ")" {
		if len(fields) != 1 {
			return fmt.Errorf("%w: ')' must stand alone", ErrParse)
		}
		p.block, p.plat, p.work, p.camp = "", nil, nil, nil
		return nil
	}
	key := fields[0]
	if p.keys[key] {
		return fmt.Errorf("%w: duplicate key %q in %s stanza", ErrParse, key, p.block)
	}
	p.keys[key] = true
	args := fields[1:]
	switch p.block {
	case "platform":
		return p.platformKey(key, args)
	case "campaign":
		return p.campaignKey(key, args)
	default:
		return p.workloadKey(key, args)
	}
}

// campaignKey parses one campaign-stanza setting.
func (p *parser) campaignKey(key string, args []string) error {
	one := func() (string, error) {
		if len(args) != 1 {
			return "", fmt.Errorf("%w: %s wants exactly one value", ErrParse, key)
		}
		return args[0], nil
	}
	switch key {
	case "ticks", "max-concurrent", "retries":
		v, err := one()
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("%w: %s wants a non-negative integer, have %q", ErrParse, key, v)
		}
		switch key {
		case "ticks":
			p.camp.Ticks = n
		case "max-concurrent":
			p.camp.MaxConcurrent = n
		case "retries":
			p.camp.Retries = n
		}
	case "interval":
		v, err := one()
		if err != nil {
			return err
		}
		d, err := parseDuration(v)
		if err != nil {
			return fmt.Errorf("%w: interval: %w", ErrParse, err)
		}
		p.camp.Interval = d
	case "rate":
		if len(args) < 1 || len(args) > 2 {
			return fmt.Errorf("%w: rate wants '<runs-per-second> [burst=<n>]'", ErrParse)
		}
		f, err := strconv.ParseFloat(args[0], 64)
		if err != nil || f < 0 {
			return fmt.Errorf("%w: rate %q: want a non-negative float", ErrParse, args[0])
		}
		p.camp.Rate = f
		if len(args) == 2 {
			bv, ok := strings.CutPrefix(args[1], "burst=")
			if !ok {
				return fmt.Errorf("%w: rate term %q: want burst=<n>", ErrParse, args[1])
			}
			n, err := strconv.Atoi(bv)
			if err != nil || n < 0 {
				return fmt.Errorf("%w: rate burst %q: want a non-negative integer", ErrParse, bv)
			}
			p.camp.Burst = n
		}
	default:
		return fmt.Errorf("%w: unknown campaign key %q", ErrParse, key)
	}
	return nil
}

func (p *parser) platformKey(key string, args []string) error {
	one := func() (string, error) {
		if len(args) != 1 {
			return "", fmt.Errorf("%w: %s wants exactly one value", ErrParse, key)
		}
		return args[0], nil
	}
	switch key {
	case "caches", "ingress", "egress", "capacity":
		v, err := one()
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("%w: %s wants a non-negative integer, have %q", ErrParse, key, v)
		}
		switch key {
		case "caches":
			p.plat.Caches = n
		case "ingress":
			p.plat.Ingress = n
		case "egress":
			p.plat.Egress = n
		case "capacity":
			p.plat.Capacity = n
		}
	case "selector":
		v, err := one()
		if err != nil {
			return err
		}
		p.plat.Selector = v
	case "egress-policy":
		v, err := one()
		if err != nil {
			return err
		}
		p.plat.EgressPolicy = v
	case "min-ttl", "max-ttl":
		v, err := one()
		if err != nil {
			return err
		}
		d, err := parseDuration(v)
		if err != nil {
			return fmt.Errorf("%w: %s: %w", ErrParse, key, err)
		}
		if key == "min-ttl" {
			p.plat.MinTTL = d
		} else {
			p.plat.MaxTTL = d
		}
	case "link":
		if len(args) == 0 {
			return fmt.Errorf("%w: link wants oneway=/jitter=/loss= terms", ErrParse)
		}
		for _, term := range args {
			k, v, ok := strings.Cut(term, "=")
			if !ok {
				return fmt.Errorf("%w: link term %q: want key=value", ErrParse, term)
			}
			switch k {
			case "oneway", "jitter":
				d, err := parseDuration(v)
				if err != nil {
					return fmt.Errorf("%w: link %s: %w", ErrParse, k, err)
				}
				if k == "oneway" {
					p.plat.LinkOneWay = d
				} else {
					p.plat.LinkJitter = d
				}
			case "loss":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return fmt.Errorf("%w: link loss %q: want a float", ErrParse, v)
				}
				p.plat.LinkLoss = f
			default:
				return fmt.Errorf("%w: unknown link term %q", ErrParse, k)
			}
		}
	case "faults":
		v, err := one()
		if err != nil {
			return err
		}
		fp, err := netsim.ParseFaultProfile(v)
		if err != nil {
			return fmt.Errorf("%w: faults: %w", ErrParse, err)
		}
		p.plat.Faults = fp
		p.plat.FaultsSpec = v
	case "forward":
		v, err := one()
		if err != nil {
			return err
		}
		p.plat.ForwardTo = v
	default:
		return fmt.Errorf("%w: unknown platform key %q", ErrParse, key)
	}
	return nil
}

func (p *parser) workloadKey(key string, args []string) error {
	one := func() (string, error) {
		if len(args) != 1 {
			return "", fmt.Errorf("%w: %s wants exactly one value", ErrParse, key)
		}
		return args[0], nil
	}
	switch key {
	case "platform":
		v, err := one()
		if err != nil {
			return err
		}
		p.work.Platform = v
	case "queries", "replicates", "clients":
		v, err := one()
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("%w: %s wants a non-negative integer, have %q", ErrParse, key, v)
		}
		switch key {
		case "queries":
			p.work.Queries = n
		case "replicates":
			p.work.Replicates = n
		case "clients":
			p.work.Clients = n
		}
	case "compensated":
		if len(args) != 0 {
			return fmt.Errorf("%w: compensated takes no value", ErrParse)
		}
		p.work.Compensated = true
	default:
		return fmt.Errorf("%w: unknown workload key %q", ErrParse, key)
	}
	return nil
}

// parseDuration accepts Go duration syntax plus a bare "0".
func parseDuration(s string) (time.Duration, error) {
	if s == "0" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}
