package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"

	"dnscde/internal/detpar"
	"dnscde/internal/metrics"
	"dnscde/internal/simtest"
	"dnscde/internal/worldstate"
)

// appState is the scenario layer's opaque payload inside a world
// snapshot: which trial the world belongs to, where in the workload
// sequence the barrier sits, and the outcomes of the workloads already
// completed. worldstate carries it as uninterpreted bytes; only this
// package reads it back.
type appState struct {
	Scenario string          `json:"scenario"`
	Trial    int             `json:"trial"`
	Seed     int64           `json:"seed"`
	Barrier  int             `json:"barrier"`
	Partial  []TrialWorkload `json:"partial"`
}

// TrialSeed returns the world seed trial i of a scenario receives —
// the first Int63 draw of its detpar stream, exactly what the parallel
// runner hands runTrial. Exposed so checkpoint producers and the
// divergence bisector re-create individual trial worlds without running
// the whole scenario.
func TrialSeed(scenarioSeed int64, trial int) int64 {
	return detpar.Rand(scenarioSeed, trial).Int63()
}

// MidpointBarrier returns the default snapshot barrier for a scenario:
// the workload index halfway through the sequence. A barrier of k means
// "after workload k-1 completed, before workload k starts"; 0 means
// before any workload ran.
func (s *Scenario) MidpointBarrier() int { return len(s.Workloads) / 2 }

// CheckpointTrial runs one trial of the scenario up to the given
// workload barrier and returns the encoded world snapshot taken there.
// The barrier may be 0 (snapshot the freshly compiled world) through
// len(s.Workloads) (snapshot after everything ran). The snapshot's
// bytes are canonical: for a fixed (scenario, trial, barrier) they are
// identical at any worker count and any shard count >= 1, which is what
// the divergence bisector compares across arms.
func CheckpointTrial(ctx context.Context, s *Scenario, trial, barrier, shards int) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if trial < 0 || trial >= s.Trials {
		return nil, fmt.Errorf("scenario: trial %d out of range [0,%d)", trial, s.Trials)
	}
	if barrier < 0 || barrier > len(s.Workloads) {
		return nil, fmt.Errorf("scenario: barrier %d out of range [0,%d]", barrier, len(s.Workloads))
	}
	seed := TrialSeed(s.Seed, trial)
	reg := metrics.New()
	w, err := simtest.New(simtest.Options{Seed: seed, Metrics: reg, Shards: shards})
	if err != nil {
		return nil, err
	}
	plats, err := s.compileTrial(w, seed)
	if err != nil {
		return nil, err
	}
	var encoded []byte
	err = w.RunSequenced(ctx, func(ctx context.Context) error {
		partial := make([]TrialWorkload, 0, barrier)
		for wi := 0; wi < barrier; wi++ {
			wd := &s.Workloads[wi]
			res, err := runWorkload(ctx, w, plats[wd.Platform], wd)
			if err != nil {
				return fmt.Errorf("scenario: workload %s on %s: %w", wd.Kind, wd.Platform, err)
			}
			partial = append(partial, TrialWorkload{
				Caches:      res.caches,
				ProbesSent:  res.probesSent,
				ProbeErrors: res.probeErrors,
			})
		}
		app, err := json.Marshal(appState{
			Scenario: s.Name,
			Trial:    trial,
			Seed:     seed,
			Barrier:  barrier,
			Partial:  partial,
		})
		if err != nil {
			return fmt.Errorf("scenario: encoding checkpoint state: %w", err)
		}
		// The workload loop is the world's only process; between iterations
		// every lane heap and mailbox is drained, so the quiescence check
		// inside Snapshot holds by construction here.
		img, err := w.Snapshot(app)
		if err != nil {
			return err
		}
		encoded, err = worldstate.Encode(img)
		return err
	})
	if err != nil {
		return nil, err
	}
	return encoded, nil
}

// ResumeTrial decodes a snapshot produced by CheckpointTrial against the
// same scenario, rebuilds the trial's world, overlays the captured
// state, and runs the remaining workloads to completion. It returns the
// trial's full outcome — byte-identical to what an uninterrupted
// runTrial of the same trial produces — plus the trial index recorded
// in the snapshot.
func ResumeTrial(ctx context.Context, s *Scenario, snapshot []byte, shards int) (TrialDetail, int, error) {
	out, trial, err := s.resumeTrial(ctx, snapshot, shards)
	if err != nil {
		return TrialDetail{}, 0, err
	}
	d := TrialDetail{Cost: out.cost, Metrics: out.metrics}
	for _, wo := range out.workloads {
		d.Workloads = append(d.Workloads, TrialWorkload{
			Caches:      wo.caches,
			ProbesSent:  wo.probesSent,
			ProbeErrors: wo.probeErrors,
		})
	}
	return d, trial, nil
}

// resumeTrial is ResumeTrial in the runner's internal trialOut shape so
// RunCheckpointed can aggregate resumed trials exactly like runTrial's.
func (s *Scenario) resumeTrial(ctx context.Context, snapshot []byte, shards int) (trialOut, int, error) {
	if err := s.Validate(); err != nil {
		return trialOut{}, 0, err
	}
	img, err := worldstate.Decode(snapshot)
	if err != nil {
		return trialOut{}, 0, err
	}
	var app appState
	if err := json.Unmarshal(img.App, &app); err != nil {
		return trialOut{}, 0, fmt.Errorf("%w: scenario state: %w", worldstate.ErrCorrupt, err)
	}
	if app.Scenario != s.Name {
		return trialOut{}, 0, fmt.Errorf("%w: snapshot is of scenario %q, not %q", worldstate.ErrMismatch, app.Scenario, s.Name)
	}
	if app.Barrier < 0 || app.Barrier > len(s.Workloads) {
		return trialOut{}, 0, fmt.Errorf("%w: barrier %d out of range [0,%d]", worldstate.ErrMismatch, app.Barrier, len(s.Workloads))
	}
	if len(app.Partial) != app.Barrier {
		return trialOut{}, 0, fmt.Errorf("%w: %d partial outcomes for barrier %d", worldstate.ErrMismatch, len(app.Partial), app.Barrier)
	}
	if app.Trial < 0 || app.Trial >= s.Trials {
		return trialOut{}, 0, fmt.Errorf("%w: trial %d out of range [0,%d)", worldstate.ErrMismatch, app.Trial, s.Trials)
	}
	if want := TrialSeed(s.Seed, app.Trial); app.Seed != want {
		return trialOut{}, 0, fmt.Errorf("%w: trial %d seed %d, scenario derives %d", worldstate.ErrMismatch, app.Trial, app.Seed, want)
	}

	reg := metrics.New()
	w, err := simtest.New(simtest.Options{Seed: app.Seed, Metrics: reg, Shards: shards})
	if err != nil {
		return trialOut{}, 0, err
	}
	plats, err := s.compileTrial(w, app.Seed)
	if err != nil {
		return trialOut{}, 0, err
	}
	if err := w.Restore(img); err != nil {
		return trialOut{}, 0, err
	}

	out := trialOut{workloads: make([]workloadOut, len(s.Workloads))}
	for i, p := range app.Partial {
		out.workloads[i] = workloadOut{
			caches:      p.Caches,
			probesSent:  p.ProbesSent,
			probeErrors: p.ProbeErrors,
		}
	}
	err = w.RunSequenced(ctx, func(ctx context.Context) error {
		for wi := app.Barrier; wi < len(s.Workloads); wi++ {
			wd := &s.Workloads[wi]
			res, err := runWorkload(ctx, w, plats[wd.Platform], wd)
			if err != nil {
				return fmt.Errorf("scenario: workload %s on %s: %w", wd.Kind, wd.Platform, err)
			}
			out.workloads[wi] = res
		}
		return nil
	})
	if err != nil {
		return trialOut{}, 0, err
	}
	snap := reg.Snapshot()
	out.cost = CostFromSnapshot(snap)
	out.metrics = snap
	return out, app.Trial, nil
}

// RunCheckpointed executes the scenario with a checkpoint/restore
// round trip inside every trial: each trial runs to its midpoint
// barrier, snapshots the world, discards it, restores the snapshot into
// a freshly built world and finishes there. The report must be
// byte-identical to Run's — this is the conformance harness's way of
// proving a snapshot captures the complete live state.
func RunCheckpointed(ctx context.Context, s *Scenario, opts RunOptions) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	barrier := s.MidpointBarrier()
	trials, err := detpar.Map(ctx, s.Seed, s.Trials, opts.Workers,
		func(i int, rng *rand.Rand) (trialOut, error) {
			// rng is unused: the trial seed is re-derived inside
			// CheckpointTrial via TrialSeed, which draws the same stream.
			snap, err := CheckpointTrial(ctx, s, i, barrier, opts.Shards)
			if err != nil {
				return trialOut{}, err
			}
			out, trial, err := s.resumeTrial(ctx, snap, opts.Shards)
			if err != nil {
				return trialOut{}, err
			}
			if trial != i {
				return trialOut{}, fmt.Errorf("scenario: snapshot of trial %d resumed as trial %d", trial, i)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	report, _ := s.assemble(trials)
	return report, nil
}
