package scenario

import (
	"context"
	"flag"
	"os"
	"testing"
)

// update regenerates the golden reports:
//
//	go test ./internal/scenario -run TestConformance -update
var update = flag.Bool("update", false, "rewrite golden scenario reports")

const corpusDir = "testdata/scenarios"

// TestConformance is the corpus lock: every scenario in
// testdata/scenarios must produce byte-identical canonical reports at
// workers=1 and workers=8, matching the checked-in golden.
func TestConformance(t *testing.T) {
	results, err := RunConformance(context.Background(), corpusDir, DefaultWorkerSweep, DefaultShardSweep, *update)
	if err != nil {
		t.Fatalf("RunConformance: %v", err)
	}
	if len(results) < 8 {
		t.Errorf("corpus has %d scenarios, want >= 8", len(results))
	}
	for _, res := range results {
		res := res
		t.Run(res.Scenario, func(t *testing.T) {
			if !res.Invariant {
				t.Fatalf("not sweep-invariant: %s", res.Detail)
			}
			if res.Updated {
				t.Logf("golden updated (%d bytes)", len(res.Report))
				return
			}
			if !res.GoldenMatch {
				t.Errorf("golden drift: %s", res.Detail)
			}
		})
	}
}

// TestConformanceUpdateIsDeterministic regenerates goldens into a
// scratch corpus twice and verifies the second pass sees no drift — the
// -update workflow itself must be a fixpoint.
func TestConformanceUpdateIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double corpus run")
	}
	dir := t.TempDir()
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	// A two-file sub-corpus keeps the double run cheap.
	copied := 0
	for _, e := range entries {
		if e.IsDir() || copied == 2 {
			continue
		}
		b, err := os.ReadFile(corpusDir + "/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dir+"/"+e.Name(), b, 0o644); err != nil {
			t.Fatal(err)
		}
		copied++
	}
	ctx := context.Background()
	if _, err := RunConformance(ctx, dir, []int{1}, []int{0}, true); err != nil {
		t.Fatalf("update pass: %v", err)
	}
	results, err := RunConformance(ctx, dir, []int{1}, []int{0, 2}, false)
	if err != nil {
		t.Fatalf("verify pass: %v", err)
	}
	for _, res := range results {
		if !res.Passed() {
			t.Errorf("%s: drift right after -update: %s", res.Scenario, res.Detail)
		}
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("LoadDir(empty) = nil error, want 'no files'")
	}
	dir := t.TempDir()
	for _, name := range []string{"a.scn", "b.scn"} {
		text := "$SCENARIO samename\nplatform p (\n)\nworkload direct (\n)\n"
		if err := os.WriteFile(dir+"/"+name, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("LoadDir with duplicate scenario names = nil error, want collision")
	}
}

func TestConformanceMissingGolden(t *testing.T) {
	dir := t.TempDir()
	text := "$SCENARIO orphan\n$TRIALS 1\nplatform p (\n)\nworkload direct (\n    queries 4\n)\n"
	if err := os.WriteFile(dir+"/orphan.scn", []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := RunConformance(context.Background(), dir, []int{1}, []int{0}, false)
	if err != nil {
		t.Fatalf("RunConformance: %v", err)
	}
	if len(results) != 1 || results[0].Passed() {
		t.Errorf("missing golden passed: %+v", results)
	}
}
