package scenario

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"

	"dnscde/internal/worldstate"
)

// checkpointShardSweep is the shard axis for the round-trip sweep; the
// legacy path (shards 0) is exercised separately because its snapshots
// carry a different event-clock barrier (DESIGN.md §14).
var checkpointShardSweep = []int{1, 4}

// TestCheckpointRoundTrip is the conformance lock for checkpoint/
// restore: every corpus scenario, run with a snapshot-restore round
// trip inside every trial (run to the midpoint barrier, snapshot,
// restore into a fresh world, finish there), must produce a final
// report byte-identical to the checked-in golden — across the full
// workers x shards sweep.
func TestCheckpointRoundTrip(t *testing.T) {
	corpus, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	workers := DefaultWorkerSweep
	shards := checkpointShardSweep
	if testing.Short() {
		workers = []int{1}
		shards = []int{1}
	}
	ctx := context.Background()
	for _, sc := range corpus {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			want, err := os.ReadFile(GoldenPath(corpusDir, sc.Name))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			for _, sh := range shards {
				for _, wk := range workers {
					report, err := RunCheckpointed(ctx, sc, RunOptions{Workers: wk, Shards: sh})
					if err != nil {
						t.Fatalf("RunCheckpointed(workers=%d shards=%d): %v", wk, sh, err)
					}
					got, err := report.CanonicalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want, got) {
						t.Errorf("workers=%d shards=%d: restored run drifted from golden: %s",
							wk, sh, firstDiff(want, got))
					}
				}
			}
		})
	}
}

// TestCheckpointRoundTripLegacy runs the round trip on the legacy
// single-scheduler path (shards 0) for one scenario: snapshots there
// carry a zero event-clock barrier, but restore-then-run must still
// reproduce the golden byte-for-byte.
func TestCheckpointRoundTripLegacy(t *testing.T) {
	sc, err := LoadFile(corpusDir + "/open-resolver-4" + ScenarioExt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(GoldenPath(corpusDir, sc.Name))
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunCheckpointed(context.Background(), sc, RunOptions{Workers: 1, Shards: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := report.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("legacy restored run drifted from golden: %s", firstDiff(want, got))
	}
}

// TestSnapshotBytesShardInvariant asserts the canonical property the
// divergence bisector relies on: for a fixed (scenario, trial, barrier)
// the encoded snapshot bytes are identical at shard counts 1 and 4.
func TestSnapshotBytesShardInvariant(t *testing.T) {
	corpus, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		corpus = corpus[:2]
	}
	ctx := context.Background()
	for _, sc := range corpus {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			barrier := sc.MidpointBarrier()
			a, err := CheckpointTrial(ctx, sc, 0, barrier, 1)
			if err != nil {
				t.Fatalf("CheckpointTrial(shards=1): %v", err)
			}
			b, err := CheckpointTrial(ctx, sc, 0, barrier, 4)
			if err != nil {
				t.Fatalf("CheckpointTrial(shards=4): %v", err)
			}
			if !bytes.Equal(a, b) {
				ia, errA := worldstate.Decode(a)
				ib, errB := worldstate.Decode(b)
				if errA != nil || errB != nil {
					t.Fatalf("snapshot bytes differ and decode failed: %v / %v", errA, errB)
				}
				t.Errorf("snapshot bytes differ across shard counts: %s", worldstate.Diff(ia, ib))
			}
		})
	}
}

// TestCheckpointTrialBarrierRange covers the degenerate barriers: 0
// (snapshot of the freshly compiled world) and len(workloads) (snapshot
// after everything ran) must both round-trip to the uninterrupted
// trial's outcome.
func TestCheckpointTrialBarrierRange(t *testing.T) {
	sc, err := LoadFile(corpusDir + "/open-resolver-4" + ScenarioExt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, details, err := RunDetailed(ctx, sc, RunOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, barrier := range []int{0, len(sc.Workloads)} {
		snap, err := CheckpointTrial(ctx, sc, 0, barrier, 1)
		if err != nil {
			t.Fatalf("CheckpointTrial(barrier=%d): %v", barrier, err)
		}
		detail, trial, err := ResumeTrial(ctx, sc, snap, 1)
		if err != nil {
			t.Fatalf("ResumeTrial(barrier=%d): %v", barrier, err)
		}
		if trial != 0 {
			t.Errorf("barrier %d: resumed trial %d, want 0", barrier, trial)
		}
		if len(detail.Workloads) != len(details[0].Workloads) {
			t.Fatalf("barrier %d: %d workload outcomes, want %d", barrier, len(detail.Workloads), len(details[0].Workloads))
		}
		for i, got := range detail.Workloads {
			if got != details[0].Workloads[i] {
				t.Errorf("barrier %d workload %d: resumed %+v, uninterrupted %+v",
					barrier, i, got, details[0].Workloads[i])
			}
		}
	}
}

// TestResumeTrialMismatch asserts a snapshot cannot be resumed under a
// different scenario: ResumeTrial must fail with ErrMismatch, not
// silently produce wrong results.
func TestResumeTrialMismatch(t *testing.T) {
	corpus, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	snap, err := CheckpointTrial(ctx, corpus[0], 0, corpus[0].MidpointBarrier(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeTrial(ctx, corpus[1], snap, 1); !errors.Is(err, worldstate.ErrMismatch) {
		t.Errorf("resuming %s snapshot under %s: err = %v, want ErrMismatch", corpus[0].Name, corpus[1].Name, err)
	}
}

// TestResumeTrialCorrupt asserts truncated snapshot bytes surface as
// ErrCorrupt from the resume path.
func TestResumeTrialCorrupt(t *testing.T) {
	sc, err := LoadFile(corpusDir + "/open-resolver-1" + ScenarioExt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	snap, err := CheckpointTrial(ctx, sc, 0, sc.MidpointBarrier(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeTrial(ctx, sc, snap[:len(snap)/2], 1); !errors.Is(err, worldstate.ErrCorrupt) {
		t.Errorf("truncated snapshot: err = %v, want ErrCorrupt", err)
	}
}
