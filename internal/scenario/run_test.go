package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// runCanonical parses text and returns the canonical report bytes.
func runCanonical(t *testing.T, text string, workers int) []byte {
	t.Helper()
	sc, err := ParseString(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	report, err := Run(context.Background(), sc, RunOptions{Workers: workers})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := report.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	return b
}

const smallScenario = `
$SCENARIO small
$SEED 3
$TRIALS 4
platform p (
    caches  4
    ingress 2
    egress  3
)
workload direct (
    queries 32
)
workload hierarchy (
    queries 32
)
`

func TestRunMeasuresDeclaredTopology(t *testing.T) {
	sc, err := ParseString(smallScenario)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	report, err := Run(context.Background(), sc, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Workloads) != 2 {
		t.Fatalf("workloads = %d, want 2", len(report.Workloads))
	}
	for _, wr := range report.Workloads {
		if wr.TruthCaches != 4 {
			t.Errorf("%s: truth = %d, want 4", wr.Kind, wr.TruthCaches)
		}
		// 32 probes against 4 caches under uniform selection cover all
		// caches with probability ~1-4·(3/4)^32 ≈ 0.9996 per trial.
		if wr.MeanCaches < 3.5 || wr.MeanCaches > 4 {
			t.Errorf("%s: mean ω = %v, want ≈ 4", wr.Kind, wr.MeanCaches)
		}
		if len(wr.CachesPerTrial) != sc.Trials {
			t.Errorf("%s: %d per-trial entries, want %d", wr.Kind, len(wr.CachesPerTrial), sc.Trials)
		}
		if wr.ProbesSent == 0 {
			t.Errorf("%s: no probes accounted", wr.Kind)
		}
	}
	if report.Cost.Probes == 0 || report.Cost.Packets == 0 {
		t.Errorf("cost = %+v, want non-zero probe/packet accounting", report.Cost)
	}
}

func TestRunWorkerInvariance(t *testing.T) {
	seq := runCanonical(t, smallScenario, 1)
	for _, workers := range []int{2, 8} {
		par := runCanonical(t, smallScenario, workers)
		if !bytes.Equal(seq, par) {
			t.Errorf("workers=%d report differs from workers=1:\n%s", workers, firstDiff(seq, par))
		}
	}
}

func TestRunRepeatable(t *testing.T) {
	a := runCanonical(t, smallScenario, 4)
	b := runCanonical(t, smallScenario, 4)
	if !bytes.Equal(a, b) {
		t.Errorf("two identical runs differ: %s", firstDiff(a, b))
	}
}

func TestRunForwarderChain(t *testing.T) {
	report, err := Run(context.Background(), mustParse(t, `
$SCENARIO fwd
$TRIALS 2
platform up (
    caches 4
)
platform front (
    caches 1
    forward up
)
workload direct (
    platform front
    queries 32
)
`), RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// A single-cache forwarder shields the upstream tier: after its one
	// miss the honey record is cached frontside, so ω measures 1.
	if got := report.Workloads[0].MeanCaches; got != 1 {
		t.Errorf("single-cache forwarder ω = %v, want 1", got)
	}
}

func TestRunFaultyScenarioCompensates(t *testing.T) {
	report, err := Run(context.Background(), mustParse(t, `
$SCENARIO lossy
$SEED 55
$TRIALS 3
platform p (
    caches 8
    faults burst=0.11:4
)
workload direct (
    queries 50
)
workload direct (
    queries 50
    compensated
)
`), RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	raw, comp := report.Workloads[0], report.Workloads[1]
	if comp.MeanCaches < raw.MeanCaches {
		t.Errorf("compensated ω %v < raw ω %v under 11%% burst loss", comp.MeanCaches, raw.MeanCaches)
	}
	if comp.ProbesSent <= raw.ProbesSent {
		t.Errorf("compensated probes %d <= raw %d, want inflation", comp.ProbesSent, raw.ProbesSent)
	}
	if report.Cost.PacketsLost == 0 {
		t.Errorf("no packets lost under burst=0.11")
	}
}

func TestRunRejectsInvalidScenario(t *testing.T) {
	_, err := Run(context.Background(), &Scenario{}, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "$SCENARIO") {
		t.Errorf("Run(zero scenario) = %v, want validation error", err)
	}
}

func mustParse(t *testing.T, text string) *Scenario {
	t.Helper()
	sc, err := ParseString(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sc
}
