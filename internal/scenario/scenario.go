// Package scenario makes CDE experiment topologies *data*: a declarative,
// deterministic plain-text format (zone-file-flavoured — ';' comments,
// '$' directives, parenthesised stanzas) that describes a complete
// experiment — platform topology (ingress/egress IPs, cache clusters,
// TTL policy, load-balancing policy), per-link fault profiles (the
// netsim.ParseFaultProfile grammar), client populations and probe
// workloads — plus a compiler into the simtest/platform machinery and a
// runner that produces byte-stable canonical JSON reports.
//
// The curated corpus under testdata/scenarios/ is locked by checked-in
// golden reports (testdata/scenarios/golden/): every scenario must
// produce byte-identical canonical reports at any worker count, and any
// behavioural drift in the enumeration/fault/metrics machinery shows up
// as a one-line golden diff. See EXPERIMENTS.md "Scenario corpus".
package scenario

import (
	"fmt"
	"regexp"
	"strings"
	"time"

	"dnscde/internal/netsim"
)

// Limits keeping parsed scenarios compilable and conformance runs fast.
const (
	MaxTrials    = 64
	MaxCaches    = 1024
	MaxAddrs     = 256
	MaxQueries   = 65536
	MaxReplicate = 64
	MaxClients   = 1024
	MaxPlatforms = 16
	MaxWorkloads = 16
)

// Campaign header limits: a standing campaign schedules at most MaxTicks
// runs, fans at most MaxConcurrentRuns of them out at once, and retries
// each failed run at most MaxRunRetries times.
const (
	MaxTicks          = 100000
	MaxConcurrentRuns = 64
	MaxRunRetries     = 16
	MaxRateBurst      = 1024
)

// Kind names a probing technique. It is a closed enum: the exhaustive
// analyzer makes every switch over Kind account for all members, so
// adding a kind here surfaces every dispatch site that must learn about
// it.
type Kind string

// Workload kinds.
const (
	KindDirect    Kind = "direct"    // §IV-B1: identical queries at an ingress IP
	KindChain     Kind = "chain"     // §IV-B2a: CNAME-chain bypass through local caches
	KindHierarchy Kind = "hierarchy" // §IV-B2b: names-hierarchy bypass
	KindTiming    Kind = "timing"    // §IV-B3: latency side channel
	KindSMTP      Kind = "smtp"      // §III-B: indirect channel through a mail server
	KindAdnet     Kind = "adnet"     // §III-C: indirect channel through web clients
)

var selectorNames = map[string]bool{
	"random": true, "round-robin": true, "hash-qname": true, "hash-source-ip": true,
}

var egressPolicyNames = map[string]bool{
	"random": true, "round-robin": true, "per-cache": true,
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9.-]*$`)

// Scenario is one parsed scenario file: a full CDE experiment described
// as data. Parse + Validate produce it; Compile/Run execute it.
type Scenario struct {
	// Name identifies the scenario ($SCENARIO directive); golden reports
	// are stored under this name.
	Name string
	// Seed drives every random stream of the run ($SEED, default 1).
	Seed int64
	// Trials is the number of independent Monte-Carlo trials ($TRIALS,
	// default 3); each trial owns a fresh simulated Internet seeded from
	// the detpar stream, so reports are identical at any worker count.
	Trials int
	// Platforms in declaration order. A platform may forward to an
	// earlier-declared platform, building multi-layer topologies.
	Platforms []PlatformDef
	// Workloads in declaration order, executed sequentially per trial.
	Workloads []WorkloadDef
	// Campaign is the optional schedule/budget header turning the
	// scenario into a standing measurement campaign (internal/campaign).
	// One-shot runners (cdebench, cdescan) ignore it; nil means the
	// scenario was written for one-shot execution.
	Campaign *CampaignDef
}

// CampaignDef is the campaign header: how a scenario is scheduled and
// budgeted when submitted to the campaign engine as a standing
// measurement. Every field is about *execution* of repeated runs —
// nothing in it changes what a single run measures, so the same file
// works under cdebench and the engine alike.
type CampaignDef struct {
	// Ticks is the number of scheduled runs (default 1).
	Ticks int
	// Interval is the wall-clock spacing between run launches; 0 launches
	// back-to-back.
	Interval time.Duration
	// MaxConcurrent bounds the runs in flight at once (default 1).
	MaxConcurrent int
	// Retries is the per-run retry budget: a failed run is re-executed up
	// to this many extra times before counting as failed.
	Retries int
	// Rate is a token-bucket budget on run launches per second; 0 means
	// unlimited. Burst is the bucket depth (default 1 when Rate > 0).
	Rate  float64
	Burst int
}

// validate normalises the campaign header.
func (c *CampaignDef) validate() error {
	if c.Ticks == 0 {
		c.Ticks = 1
	}
	if c.Ticks < 1 || c.Ticks > MaxTicks {
		return fmt.Errorf("scenario: campaign: ticks %d out of range [1,%d]", c.Ticks, MaxTicks)
	}
	if c.Interval < 0 {
		return fmt.Errorf("scenario: campaign: negative interval")
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 1
	}
	if c.MaxConcurrent < 1 || c.MaxConcurrent > MaxConcurrentRuns {
		return fmt.Errorf("scenario: campaign: max-concurrent %d out of range [1,%d]", c.MaxConcurrent, MaxConcurrentRuns)
	}
	if c.Retries < 0 || c.Retries > MaxRunRetries {
		return fmt.Errorf("scenario: campaign: retries %d out of range [0,%d]", c.Retries, MaxRunRetries)
	}
	if c.Rate < 0 {
		return fmt.Errorf("scenario: campaign: negative rate")
	}
	if c.Burst == 0 && c.Rate > 0 {
		c.Burst = 1
	}
	if c.Burst < 0 || c.Burst > MaxRateBurst {
		return fmt.Errorf("scenario: campaign: burst %d out of range [0,%d]", c.Burst, MaxRateBurst)
	}
	if c.Burst > 0 && c.Rate == 0 {
		return fmt.Errorf("scenario: campaign: burst without rate")
	}
	return nil
}

// PlatformDef describes one resolution platform stanza.
type PlatformDef struct {
	Name    string
	Caches  int // hidden caches n (default 1)
	Ingress int // ingress IPs (default 1)
	Egress  int // egress IPs (default 1)
	// Selector is the load-balancing policy: random, round-robin,
	// hash-qname or hash-source-ip (default random).
	Selector string
	// EgressPolicy picks the egress IP per upstream query: random,
	// round-robin or per-cache (default random).
	EgressPolicy string
	// MinTTL/MaxTTL/Capacity form the per-cache TTL/eviction policy;
	// zero values leave the platform defaults.
	MinTTL, MaxTTL time.Duration
	Capacity       int
	// LinkOneWay/LinkJitter/LinkLoss shape the client↔platform link
	// (defaults 2ms / 0 / 0).
	LinkOneWay time.Duration
	LinkJitter time.Duration
	LinkLoss   float64
	// Faults is the link's deterministic fault profile, in the
	// netsim.ParseFaultProfile grammar; FaultsSpec preserves the source
	// text for report echoes. Nil means a clean link.
	Faults     *netsim.FaultProfile
	FaultsSpec string
	// ForwardTo names an earlier-declared platform used as this
	// platform's upstream forwarder (§VI); empty means the platform
	// resolves iteratively from the roots.
	ForwardTo string
}

// WorkloadDef describes one probe workload stanza.
type WorkloadDef struct {
	// Kind is the probing technique; see the Kind constants.
	Kind Kind
	// Platform names the target platform; default is the first one.
	Platform string
	// Queries is the probe budget q; 0 uses the core default.
	Queries int
	// Replicates is the carpet-bombing floor K; 0 means 1.
	Replicates int
	// Compensated switches the direct workload to the §V-B
	// loss-compensated loop (only valid for kind direct).
	Compensated bool
	// Clients is the web-client population for kind adnet (default 8).
	Clients int
}

// Validate checks cross-stanza invariants and applies defaults; Parse
// calls it, so a parsed scenario is always valid. It is exported for
// programmatically built scenarios.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing $SCENARIO directive")
	}
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario: bad name %q (want %s)", s.Name, nameRE)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Trials == 0 {
		s.Trials = 3
	}
	if s.Trials < 1 || s.Trials > MaxTrials {
		return fmt.Errorf("scenario: $TRIALS %d out of range [1,%d]", s.Trials, MaxTrials)
	}
	if len(s.Platforms) == 0 {
		return fmt.Errorf("scenario: no platform stanza")
	}
	if len(s.Platforms) > MaxPlatforms {
		return fmt.Errorf("scenario: %d platforms exceed the limit of %d", len(s.Platforms), MaxPlatforms)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario: no workload stanza")
	}
	if len(s.Workloads) > MaxWorkloads {
		return fmt.Errorf("scenario: %d workloads exceed the limit of %d", len(s.Workloads), MaxWorkloads)
	}
	if s.Campaign != nil {
		if err := s.Campaign.validate(); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for i := range s.Platforms {
		p := &s.Platforms[i]
		if err := p.validate(seen); err != nil {
			return err
		}
		seen[p.Name] = true
	}
	for i := range s.Workloads {
		if err := s.Workloads[i].validate(s.Platforms); err != nil {
			return err
		}
	}
	return nil
}

// validate normalises one platform stanza; earlier holds the platforms
// declared before it (forward targets must already exist).
func (p *PlatformDef) validate(earlier map[string]bool) error {
	if !nameRE.MatchString(p.Name) {
		return fmt.Errorf("scenario: bad platform name %q (want %s)", p.Name, nameRE)
	}
	if earlier[p.Name] {
		return fmt.Errorf("scenario: duplicate platform %q", p.Name)
	}
	if p.Caches == 0 {
		p.Caches = 1
	}
	if p.Ingress == 0 {
		p.Ingress = 1
	}
	if p.Egress == 0 {
		p.Egress = 1
	}
	if p.Caches < 1 || p.Caches > MaxCaches {
		return fmt.Errorf("scenario: platform %s: caches %d out of range [1,%d]", p.Name, p.Caches, MaxCaches)
	}
	if p.Ingress < 1 || p.Ingress > MaxAddrs {
		return fmt.Errorf("scenario: platform %s: ingress %d out of range [1,%d]", p.Name, p.Ingress, MaxAddrs)
	}
	if p.Egress < 1 || p.Egress > MaxAddrs {
		return fmt.Errorf("scenario: platform %s: egress %d out of range [1,%d]", p.Name, p.Egress, MaxAddrs)
	}
	if p.Selector == "" {
		p.Selector = "random"
	}
	if !selectorNames[p.Selector] {
		return fmt.Errorf("scenario: platform %s: unknown selector %q", p.Name, p.Selector)
	}
	if p.EgressPolicy == "" {
		p.EgressPolicy = "random"
	}
	if !egressPolicyNames[p.EgressPolicy] {
		return fmt.Errorf("scenario: platform %s: unknown egress-policy %q", p.Name, p.EgressPolicy)
	}
	if p.MinTTL < 0 || p.MaxTTL < 0 || (p.MaxTTL > 0 && p.MinTTL > p.MaxTTL) {
		return fmt.Errorf("scenario: platform %s: bad TTL policy min=%v max=%v", p.Name, p.MinTTL, p.MaxTTL)
	}
	if p.Capacity < 0 {
		return fmt.Errorf("scenario: platform %s: negative capacity", p.Name)
	}
	if p.LinkOneWay == 0 {
		p.LinkOneWay = 2 * time.Millisecond
	}
	if p.LinkOneWay < 0 || p.LinkJitter < 0 {
		return fmt.Errorf("scenario: platform %s: negative link timing", p.Name)
	}
	if p.LinkLoss < 0 || p.LinkLoss >= 1 {
		return fmt.Errorf("scenario: platform %s: loss %v out of range [0,1)", p.Name, p.LinkLoss)
	}
	if p.ForwardTo != "" {
		if p.ForwardTo == p.Name {
			return fmt.Errorf("scenario: platform %s forwards to itself", p.Name)
		}
		if !earlier[p.ForwardTo] {
			return fmt.Errorf("scenario: platform %s forwards to %q, which is not an earlier-declared platform", p.Name, p.ForwardTo)
		}
	}
	return nil
}

// validate normalises one workload stanza against the platform list.
func (w *WorkloadDef) validate(platforms []PlatformDef) error {
	switch w.Kind {
	case KindDirect, KindChain, KindHierarchy, KindTiming, KindSMTP, KindAdnet:
	default:
		return fmt.Errorf("scenario: unknown workload kind %q", w.Kind)
	}
	if w.Platform == "" {
		w.Platform = platforms[0].Name
	}
	found := false
	for _, p := range platforms {
		if p.Name == w.Platform {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("scenario: workload %s targets unknown platform %q", w.Kind, w.Platform)
	}
	if w.Queries < 0 || w.Queries > MaxQueries {
		return fmt.Errorf("scenario: workload %s: queries %d out of range [0,%d]", w.Kind, w.Queries, MaxQueries)
	}
	if w.Replicates < 0 || w.Replicates > MaxReplicate {
		return fmt.Errorf("scenario: workload %s: replicates %d out of range [0,%d]", w.Kind, w.Replicates, MaxReplicate)
	}
	if w.Compensated && w.Kind != KindDirect {
		return fmt.Errorf("scenario: workload %s: compensated is only valid for kind direct", w.Kind)
	}
	if w.Clients != 0 && w.Kind != KindAdnet {
		return fmt.Errorf("scenario: workload %s: clients is only valid for kind adnet", w.Kind)
	}
	if w.Kind == KindAdnet {
		if w.Clients == 0 {
			w.Clients = 8
		}
		if w.Clients < 1 || w.Clients > MaxClients {
			return fmt.Errorf("scenario: workload adnet: clients %d out of range [1,%d]", w.Clients, MaxClients)
		}
	}
	return nil
}

// Format renders the scenario back into its canonical source text. A
// validated scenario round-trips: Parse(Format(s)) is semantically equal
// to s (the fuzz harness holds this invariant).
func (s *Scenario) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "$SCENARIO %s\n$SEED %d\n$TRIALS %d\n", s.Name, s.Seed, s.Trials)
	if c := s.Campaign; c != nil {
		sb.WriteString("\ncampaign (\n")
		fmt.Fprintf(&sb, "    ticks %d\n", c.Ticks)
		if c.Interval > 0 {
			fmt.Fprintf(&sb, "    interval %s\n", c.Interval)
		}
		fmt.Fprintf(&sb, "    max-concurrent %d\n", c.MaxConcurrent)
		if c.Retries > 0 {
			fmt.Fprintf(&sb, "    retries %d\n", c.Retries)
		}
		if c.Rate > 0 {
			fmt.Fprintf(&sb, "    rate %g burst=%d\n", c.Rate, c.Burst)
		}
		sb.WriteString(")\n")
	}
	for _, p := range s.Platforms {
		fmt.Fprintf(&sb, "\nplatform %s (\n", p.Name)
		fmt.Fprintf(&sb, "    caches %d\n    ingress %d\n    egress %d\n", p.Caches, p.Ingress, p.Egress)
		fmt.Fprintf(&sb, "    selector %s\n    egress-policy %s\n", p.Selector, p.EgressPolicy)
		if p.MinTTL > 0 {
			fmt.Fprintf(&sb, "    min-ttl %s\n", p.MinTTL)
		}
		if p.MaxTTL > 0 {
			fmt.Fprintf(&sb, "    max-ttl %s\n", p.MaxTTL)
		}
		if p.Capacity > 0 {
			fmt.Fprintf(&sb, "    capacity %d\n", p.Capacity)
		}
		fmt.Fprintf(&sb, "    link oneway=%s jitter=%s loss=%g\n", p.LinkOneWay, p.LinkJitter, p.LinkLoss)
		if p.Faults != nil {
			// FaultsSpec preserves the source token so Format is an exact
			// textual fixpoint; fall back to the normalized rendering for
			// scenarios built programmatically.
			spec := p.FaultsSpec
			if spec == "" {
				spec = p.Faults.String()
			}
			fmt.Fprintf(&sb, "    faults %s\n", spec)
		}
		if p.ForwardTo != "" {
			fmt.Fprintf(&sb, "    forward %s\n", p.ForwardTo)
		}
		sb.WriteString(")\n")
	}
	for _, w := range s.Workloads {
		fmt.Fprintf(&sb, "\nworkload %s (\n", w.Kind)
		fmt.Fprintf(&sb, "    platform %s\n", w.Platform)
		if w.Queries > 0 {
			fmt.Fprintf(&sb, "    queries %d\n", w.Queries)
		}
		if w.Replicates > 0 {
			fmt.Fprintf(&sb, "    replicates %d\n", w.Replicates)
		}
		if w.Compensated {
			sb.WriteString("    compensated\n")
		}
		if w.Kind == KindAdnet {
			fmt.Fprintf(&sb, "    clients %d\n", w.Clients)
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}
