package scenario

import (
	"fmt"
	"net/netip"

	"dnscde/internal/dnscache"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
)

// Salts separating the scenario's derived seed streams (detpar.Derive).
const (
	saltPlatform = 0x70 // per-platform seeds
	saltWorkload = 0x77 // per-workload seeds
)

// newSelector instantiates a load-balancing policy by grammar name. The
// names mirror cdescan's -selector flag.
func newSelector(name string, seed int64) (loadbal.Selector, error) {
	switch name {
	case "random":
		return loadbal.NewRandom(seed), nil
	case "round-robin":
		return loadbal.NewRoundRobin(), nil
	case "hash-qname":
		return loadbal.HashQName{}, nil
	case "hash-source-ip":
		return loadbal.HashSourceIP{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown selector %q", name)
	}
}

// egressPolicy maps a grammar name to the platform policy.
func egressPolicy(name string) (platform.EgressPolicy, error) {
	switch name {
	case "random":
		return platform.EgressRandom, nil
	case "round-robin":
		return platform.EgressRoundRobin, nil
	case "per-cache":
		return platform.EgressPerCache, nil
	default:
		return 0, fmt.Errorf("scenario: unknown egress-policy %q", name)
	}
}

// compilePlatform materialises one platform stanza inside the world.
// earlier maps already-built platforms (forward targets are validated to
// be earlier-declared, so lookup cannot miss).
func compilePlatform(w *simtest.World, pd *PlatformDef, seed int64, earlier map[string]*platform.Platform) (*platform.Platform, error) {
	sel, err := newSelector(pd.Selector, seed)
	if err != nil {
		return nil, err
	}
	egr, err := egressPolicy(pd.EgressPolicy)
	if err != nil {
		return nil, err
	}
	var forwarders []netip.Addr
	if pd.ForwardTo != "" {
		up, ok := earlier[pd.ForwardTo]
		if !ok {
			return nil, fmt.Errorf("scenario: platform %s forwards to unbuilt platform %q", pd.Name, pd.ForwardTo)
		}
		forwarders = []netip.Addr{up.Config().IngressIPs[0]}
	}
	return w.NewPlatform(simtest.PlatformSpec{
		Name:    pd.Name,
		Caches:  pd.Caches,
		Ingress: pd.Ingress,
		Egress:  pd.Egress,
		Seed:    seed,
		Profile: netsim.LinkProfile{
			OneWay: pd.LinkOneWay,
			Jitter: pd.LinkJitter,
			Loss:   pd.LinkLoss,
			Faults: pd.Faults,
		},
		Mutate: func(c *platform.Config) {
			c.Selector = sel
			c.EgressPolicy = egr
			c.CachePolicy = dnscache.Policy{
				MinTTL:   pd.MinTTL,
				MaxTTL:   pd.MaxTTL,
				Capacity: pd.Capacity,
			}
			if len(forwarders) > 0 {
				c.Roots = nil
				c.Forwarders = forwarders
			}
		},
	})
}

// compileTrial builds every platform of the scenario, in declaration
// order, inside the given world.
func (s *Scenario) compileTrial(w *simtest.World, seed int64) (map[string]*platform.Platform, error) {
	plats := make(map[string]*platform.Platform, len(s.Platforms))
	for i := range s.Platforms {
		pd := &s.Platforms[i]
		plat, err := compilePlatform(w, pd, derive(seed, saltPlatform, uint64(i)), plats)
		if err != nil {
			return nil, fmt.Errorf("scenario: platform %s: %w", pd.Name, err)
		}
		plats[pd.Name] = plat
	}
	return plats, nil
}
