package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"
)

const minimal = `
$SCENARIO t
platform p (
    caches 2
)
workload direct (
)
`

func TestParseMinimalDefaults(t *testing.T) {
	sc, err := ParseString(minimal)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Name != "t" || sc.Seed != 1 || sc.Trials != 3 {
		t.Errorf("defaults = %q/%d/%d, want t/1/3", sc.Name, sc.Seed, sc.Trials)
	}
	p := sc.Platforms[0]
	if p.Caches != 2 || p.Ingress != 1 || p.Egress != 1 {
		t.Errorf("platform shape = %d/%d/%d, want 2/1/1", p.Caches, p.Ingress, p.Egress)
	}
	if p.Selector != "random" || p.EgressPolicy != "random" {
		t.Errorf("policies = %q/%q, want random/random", p.Selector, p.EgressPolicy)
	}
	if p.LinkOneWay != 2*time.Millisecond {
		t.Errorf("default oneway = %v, want 2ms", p.LinkOneWay)
	}
	w := sc.Workloads[0]
	if w.Platform != "p" {
		t.Errorf("workload platform = %q, want p (first platform)", w.Platform)
	}
}

func TestParseFull(t *testing.T) {
	sc, err := ParseString(`
; full grammar exercise
$SCENARIO full-demo
$SEED 7
$TRIALS 2

platform upstream (
    caches        8
    ingress       2
    egress        4
    selector      round-robin
    egress-policy per-cache
    min-ttl       30s
    max-ttl       1h
    capacity      512
    link          oneway=5ms jitter=1ms loss=0.01
    faults        burst=0.11:4,servfail=0.02
)

platform front ( ; forwards upstream
    caches  4
    forward upstream
)

workload direct (
    platform   front
    queries    24
    replicates 2
    compensated
)

workload adnet (
    platform front
    clients  12
)
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	up := sc.Platforms[0]
	if up.MinTTL != 30*time.Second || up.MaxTTL != time.Hour || up.Capacity != 512 {
		t.Errorf("TTL policy = %v/%v/%d", up.MinTTL, up.MaxTTL, up.Capacity)
	}
	if up.Faults == nil || up.Faults.ServFailRate != 0.02 {
		t.Errorf("faults = %v, want burst+servfail profile", up.Faults)
	}
	if up.LinkLoss != 0.01 || up.LinkJitter != time.Millisecond {
		t.Errorf("link = loss %v jitter %v", up.LinkLoss, up.LinkJitter)
	}
	if sc.Platforms[1].ForwardTo != "upstream" {
		t.Errorf("forward = %q, want upstream", sc.Platforms[1].ForwardTo)
	}
	d := sc.Workloads[0]
	if !d.Compensated || d.Queries != 24 || d.Replicates != 2 {
		t.Errorf("direct workload = %+v", d)
	}
	if sc.Workloads[1].Clients != 12 {
		t.Errorf("adnet clients = %d, want 12", sc.Workloads[1].Clients)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"empty", "", "missing $SCENARIO"},
		{"no platform", "$SCENARIO x\nworkload direct (\n)\n", "no platform"},
		{"no workload", "$SCENARIO x\nplatform p (\n)\n", "no workload"},
		{"unknown directive", "$BOGUS 1\n", "unknown directive"},
		{"duplicate directive", "$SEED 1\n$SEED 2\n", "duplicate directive"},
		{"bad seed", "$SCENARIO x\n$SEED zero\n", "positive integer"},
		{"seed zero", "$SCENARIO x\n$SEED 0\n", "positive integer"},
		{"trials range", "$SCENARIO x\n$TRIALS 9999\nplatform p (\n)\nworkload direct (\n)\n", "out of range"},
		{"top-level junk", "$SCENARIO x\nbananas\n", "unexpected"},
		{"unterminated", "$SCENARIO x\nplatform p (\ncaches 1\n", "unterminated platform stanza"},
		{"close with junk", "$SCENARIO x\nplatform p (\n) trailing\n", "stand alone"},
		{"unknown platform key", "$SCENARIO x\nplatform p (\nwidth 3\n)\n", "unknown platform key"},
		{"duplicate key", "$SCENARIO x\nplatform p (\ncaches 1\ncaches 2\n)\n", "duplicate key"},
		{"bad caches", "$SCENARIO x\nplatform p (\ncaches minus\n)\n", "non-negative integer"},
		{"caches range", "$SCENARIO x\nplatform p (\ncaches 20000\n)\nworkload direct (\n)\n", "out of range"},
		{"bad selector", "$SCENARIO x\nplatform p (\nselector fancy\n)\nworkload direct (\n)\n", "unknown selector"},
		{"bad egress policy", "$SCENARIO x\nplatform p (\negress-policy fancy\n)\nworkload direct (\n)\n", "unknown egress-policy"},
		{"bad link term", "$SCENARIO x\nplatform p (\nlink speed=1\n)\n", "unknown link term"},
		{"link no eq", "$SCENARIO x\nplatform p (\nlink oneway\n)\n", "want key=value"},
		{"bad duration", "$SCENARIO x\nplatform p (\nlink oneway=fast\n)\n", "bad duration"},
		{"loss range", "$SCENARIO x\nplatform p (\nlink loss=1.5\n)\nworkload direct (\n)\n", "out of range"},
		{"bad faults", "$SCENARIO x\nplatform p (\nfaults bogus=1\n)\n", "unknown fault key"},
		{"ttl order", "$SCENARIO x\nplatform p (\nmin-ttl 1h\nmax-ttl 1s\n)\nworkload direct (\n)\n", "bad TTL policy"},
		{"dup platform", "$SCENARIO x\nplatform p (\n)\nplatform p (\n)\nworkload direct (\n)\n", "duplicate platform"},
		{"self forward", "$SCENARIO x\nplatform p (\nforward p\n)\nworkload direct (\n)\n", "forwards to itself"},
		{"forward later", "$SCENARIO x\nplatform p (\nforward q\n)\nplatform q (\n)\nworkload direct (\n)\n", "earlier-declared"},
		{"unknown workload kind", "$SCENARIO x\nplatform p (\n)\nworkload teleport (\n)\n", "unknown workload kind"},
		{"unknown workload key", "$SCENARIO x\nplatform p (\n)\nworkload direct (\nspeed 1\n)\n", "unknown workload key"},
		{"workload platform", "$SCENARIO x\nplatform p (\n)\nworkload direct (\nplatform q\n)\n", "unknown platform"},
		{"compensated chain", "$SCENARIO x\nplatform p (\n)\nworkload chain (\ncompensated\n)\n", "only valid for kind direct"},
		{"compensated value", "$SCENARIO x\nplatform p (\n)\nworkload direct (\ncompensated yes\n)\n", "takes no value"},
		{"clients on direct", "$SCENARIO x\nplatform p (\n)\nworkload direct (\nclients 4\n)\n", "only valid for kind adnet"},
		{"bad name", "$SCENARIO Nope!\nplatform p (\n)\nworkload direct (\n)\n", "bad name"},
		{"campaign open", "$SCENARIO x\ncampaign extra (\n", "want 'campaign ('"},
		{"dup campaign", "$SCENARIO x\ncampaign (\n)\ncampaign (\n)\nplatform p (\n)\nworkload direct (\n)\n", "duplicate campaign stanza"},
		{"unknown campaign key", "$SCENARIO x\ncampaign (\ncadence 5\n)\n", "unknown campaign key"},
		{"bad ticks", "$SCENARIO x\ncampaign (\nticks lots\n)\n", "non-negative integer"},
		{"ticks range", "$SCENARIO x\ncampaign (\nticks 2000000\n)\nplatform p (\n)\nworkload direct (\n)\n", "out of range"},
		{"concurrent range", "$SCENARIO x\ncampaign (\nmax-concurrent 100\n)\nplatform p (\n)\nworkload direct (\n)\n", "out of range"},
		{"retries range", "$SCENARIO x\ncampaign (\nretries 99\n)\nplatform p (\n)\nworkload direct (\n)\n", "out of range"},
		{"bad interval", "$SCENARIO x\ncampaign (\ninterval soon\n)\n", "bad duration"},
		{"bad rate", "$SCENARIO x\ncampaign (\nrate fast\n)\n", "non-negative float"},
		{"bad burst", "$SCENARIO x\ncampaign (\nrate 5 burst=-1\n)\n", "non-negative integer"},
		{"burst term", "$SCENARIO x\ncampaign (\nrate 5 depth=2\n)\n", "want burst=<n>"},
		{"burst without rate", "$SCENARIO x\ncampaign (\nrate 0 burst=4\n)\nplatform p (\n)\nworkload direct (\n)\n", "burst without rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.text)
			if err == nil {
				t.Fatalf("Parse(%q): want error containing %q, got nil", tc.text, tc.want)
			}
			if !errors.Is(err, ErrParse) {
				t.Errorf("error %v does not wrap ErrParse", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseCampaignHeader(t *testing.T) {
	sc, err := ParseString(`$SCENARIO standing
campaign (
    ticks          12
    interval       250ms
    max-concurrent 3
    retries        2
    rate           40 burst=4
)
platform p (
)
workload direct (
)
`)
	if err != nil {
		t.Fatal(err)
	}
	c := sc.Campaign
	if c == nil {
		t.Fatal("Campaign = nil")
	}
	if c.Ticks != 12 || c.Interval != 250*time.Millisecond || c.MaxConcurrent != 3 ||
		c.Retries != 2 || c.Rate != 40 || c.Burst != 4 {
		t.Errorf("campaign header = %+v", *c)
	}
	// Round trip through Format preserves the header.
	sc2, err := ParseString(sc.Format())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sc.Format())
	}
	if *sc2.Campaign != *c {
		t.Errorf("round trip = %+v, want %+v", *sc2.Campaign, *c)
	}
}

func TestParseCampaignDefaults(t *testing.T) {
	sc, err := ParseString("$SCENARIO d\ncampaign (\n)\nplatform p (\n)\nworkload direct (\n)\n")
	if err != nil {
		t.Fatal(err)
	}
	c := sc.Campaign
	if c.Ticks != 1 || c.MaxConcurrent != 1 || c.Retries != 0 || c.Rate != 0 || c.Burst != 0 {
		t.Errorf("campaign defaults = %+v", *c)
	}
	// A one-shot scenario stays campaign-free.
	plain, err := ParseString(minimal)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Campaign != nil {
		t.Errorf("minimal scenario grew a campaign header: %+v", *plain.Campaign)
	}
}

func TestParseReportsLineNumbers(t *testing.T) {
	_, err := ParseString("$SCENARIO x\nplatform p (\n    caches 1\n    caches 2\n)\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %v, want line 4 attribution", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, text := range []string{minimal, `
$SCENARIO round-trip
$SEED 99
$TRIALS 2
platform up (
    caches 8
    selector round-robin
    faults burst=0.05:4,outage=4+8
)
platform down (
    caches 2
    min-ttl 30s
    capacity 128
    forward up
)
workload direct (
    platform down
    queries 24
    compensated
)
workload adnet (
    platform down
    clients 6
)
`} {
		sc, err := ParseString(text)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		formatted := sc.Format()
		sc2, err := ParseString(formatted)
		if err != nil {
			t.Fatalf("reparse of Format output: %v\n%s", err, formatted)
		}
		if got := sc2.Format(); got != formatted {
			t.Errorf("Format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", formatted, got)
		}
	}
}
