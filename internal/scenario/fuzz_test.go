package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenarioParse asserts the parser never panics and that any input
// it accepts round-trips: Format output must reparse, and Format must be
// a fixpoint of parse∘Format.
func FuzzScenarioParse(f *testing.F) {
	f.Add(minimal)
	f.Add("$SCENARIO x\n$SEED 7\n$TRIALS 2\nplatform p (\n    caches 8\n    selector round-robin\n    min-ttl 30s\n    link oneway=5ms jitter=1ms loss=0.01\n    faults burst=0.11:4,servfail=0.02\n)\nworkload direct (\n    queries 24\n    compensated\n)\n")
	f.Add("$SCENARIO f\nplatform up (\n)\nplatform dn (\n    forward up\n)\nworkload adnet (\n    clients 4\n)\n")
	f.Add("; comment\n$BOGUS\nplatform (\n")
	// The checked-in corpus seeds the interesting grammar corners.
	paths, _ := filepath.Glob(filepath.Join(corpusDir, "*"+ScenarioExt))
	for _, p := range paths {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Fuzz(func(t *testing.T, text string) {
		sc, err := ParseString(text)
		if err != nil {
			return
		}
		formatted := sc.Format()
		sc2, err := ParseString(formatted)
		if err != nil {
			t.Fatalf("Format output does not reparse: %v\n%s", err, formatted)
		}
		if got := sc2.Format(); got != formatted {
			t.Fatalf("Format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", formatted, got)
		}
	})
}
