package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dnscde/internal/adnet"
	"dnscde/internal/core"
	"dnscde/internal/detpar"
	"dnscde/internal/metrics"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/smtpsim"
)

// derive is detpar.Derive, aliased so compile/run share one spelling.
func derive(seed int64, salts ...uint64) int64 { return detpar.Derive(seed, salts...) }

// RunOptions tunes execution, not results: reports are byte-identical at
// any worker count and any shard count.
type RunOptions struct {
	// Workers bounds the trial fan-out; <= 0 uses GOMAXPROCS.
	Workers int
	// Shards, when >= 1, runs every trial's world on a sharded
	// discrete-event scheduler with that many event-loop lanes (see
	// simtest.Options.Shards); 0 keeps the legacy single-scheduler path.
	// Reports are byte-identical either way (DESIGN.md §12).
	Shards int
}

// Cost is the scenario's accounting total across all trials, read from
// the per-trial metrics registries.
type Cost struct {
	Probes      int64 `json:"probes"`
	ProbeErrors int64 `json:"probe_errors"`
	Packets     int64 `json:"packets"`
	PacketsLost int64 `json:"packets_lost"`
	Retries     int64 `json:"retries"`
	// FaultsInjected totals every netsim.faults.* event (servfail,
	// refused, truncated, duplicated, late, outage).
	FaultsInjected int64 `json:"faults_injected"`
}

// PlatformReport echoes one platform's declared shape — the ground truth
// the workloads measure against.
type PlatformReport struct {
	Name         string `json:"name"`
	Caches       int    `json:"caches"`
	Ingress      int    `json:"ingress"`
	Egress       int    `json:"egress"`
	Selector     string `json:"selector"`
	EgressPolicy string `json:"egress_policy"`
	Faults       string `json:"faults,omitempty"`
	ForwardTo    string `json:"forward_to,omitempty"`
}

// WorkloadReport is one workload's outcome aggregated over all trials.
type WorkloadReport struct {
	Kind        string `json:"kind"`
	Platform    string `json:"platform"`
	Queries     int    `json:"queries"`
	Replicates  int    `json:"replicates"`
	Compensated bool   `json:"compensated,omitempty"`
	Clients     int    `json:"clients,omitempty"`
	// TruthCaches is the target platform's declared cache count n.
	TruthCaches int `json:"truth_caches"`
	// MeanCaches is the measured ω averaged over trials (4 decimals);
	// CachesPerTrial lists each trial's ω in trial order.
	MeanCaches     float64 `json:"mean_caches"`
	CachesPerTrial []int   `json:"caches_per_trial"`
	// ProbesSent/ProbeErrors total the workload's probes across trials.
	ProbesSent  int64 `json:"probes_sent"`
	ProbeErrors int64 `json:"probe_errors"`
}

// Report is the canonical outcome of one scenario run. It contains no
// wall-clock or host-dependent fields; two runs of the same scenario at
// any worker counts marshal to identical bytes.
type Report struct {
	Scenario  string           `json:"scenario"`
	Seed      int64            `json:"seed"`
	Trials    int              `json:"trials"`
	Platforms []PlatformReport `json:"platforms"`
	Workloads []WorkloadReport `json:"workloads"`
	Cost      Cost             `json:"cost"`
}

// CanonicalJSON renders the report with stable key order (struct order),
// two-space indentation and a trailing newline — the byte form goldens
// are stored and diffed in.
func (r *Report) CanonicalJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("scenario: encoding report: %w", err)
	}
	return buf.Bytes(), nil
}

// workloadOut is one workload's outcome within a single trial.
type workloadOut struct {
	caches      int
	probesSent  int64
	probeErrors int64
}

// trialOut is one trial's contribution, merged in trial order.
type trialOut struct {
	workloads []workloadOut
	cost      Cost
	metrics   metrics.Snapshot
}

// TrialWorkload is one workload's outcome within one trial, as exposed
// to detail consumers (the campaign engine's per-trial result rows).
type TrialWorkload struct {
	Caches      int
	ProbesSent  int64
	ProbeErrors int64
}

// TrialDetail is one trial's full outcome: per-workload measurements,
// the cost roll-up, and the trial's raw accounting snapshot for callers
// that merge registries across runs.
type TrialDetail struct {
	Workloads []TrialWorkload
	Cost      Cost
	Metrics   metrics.Snapshot
}

// Run executes the scenario: s.Trials independent trials, each building
// a fresh simulated Internet with every declared platform and executing
// every workload in declaration order, fanned out on the detpar pool.
// The report aggregates per-workload outcomes and cost accounting in
// trial order and is byte-identical at any opts.Workers value.
func Run(ctx context.Context, s *Scenario, opts RunOptions) (*Report, error) {
	report, _, err := RunDetailed(ctx, s, opts)
	return report, err
}

// RunDetailed is Run plus the per-trial outcomes, in trial order. The
// report is identical to Run's; the detail slice exposes what each trial
// measured (and its accounting snapshot) without touching the canonical
// report shape the goldens lock.
func RunDetailed(ctx context.Context, s *Scenario, opts RunOptions) (*Report, []TrialDetail, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	trials, err := detpar.Map(ctx, s.Seed, s.Trials, opts.Workers,
		func(i int, rng *rand.Rand) (trialOut, error) {
			return s.runTrial(ctx, rng.Int63(), opts.Shards)
		})
	if err != nil {
		return nil, nil, err
	}
	report, details := s.assemble(trials)
	return report, details, nil
}

// assemble folds per-trial outcomes (in trial order) into the canonical
// report plus the detail slice. Shared by the straight-through runner and
// the checkpoint/restore round-trip runner, so both produce reports from
// identical code.
func (s *Scenario) assemble(trials []trialOut) (*Report, []TrialDetail) {
	report := &Report{Scenario: s.Name, Seed: s.Seed, Trials: s.Trials}
	for _, pd := range s.Platforms {
		report.Platforms = append(report.Platforms, PlatformReport{
			Name:         pd.Name,
			Caches:       pd.Caches,
			Ingress:      pd.Ingress,
			Egress:       pd.Egress,
			Selector:     pd.Selector,
			EgressPolicy: pd.EgressPolicy,
			Faults:       pd.Faults.String(),
			ForwardTo:    pd.ForwardTo,
		})
	}
	for wi, wd := range s.Workloads {
		wr := WorkloadReport{
			Kind:        string(wd.Kind),
			Platform:    wd.Platform,
			Queries:     wd.Queries,
			Replicates:  wd.Replicates,
			Compensated: wd.Compensated,
			Clients:     wd.Clients,
			TruthCaches: s.platformCaches(wd.Platform),
		}
		sum := 0
		for _, tr := range trials {
			out := tr.workloads[wi]
			sum += out.caches
			wr.CachesPerTrial = append(wr.CachesPerTrial, out.caches)
			wr.ProbesSent += out.probesSent
			wr.ProbeErrors += out.probeErrors
		}
		wr.MeanCaches = round4(float64(sum) / float64(s.Trials))
		report.Workloads = append(report.Workloads, wr)
	}
	details := make([]TrialDetail, 0, len(trials))
	for _, tr := range trials {
		report.Cost.Probes += tr.cost.Probes
		report.Cost.ProbeErrors += tr.cost.ProbeErrors
		report.Cost.Packets += tr.cost.Packets
		report.Cost.PacketsLost += tr.cost.PacketsLost
		report.Cost.Retries += tr.cost.Retries
		report.Cost.FaultsInjected += tr.cost.FaultsInjected
		d := TrialDetail{Cost: tr.cost, Metrics: tr.metrics}
		for _, out := range tr.workloads {
			d.Workloads = append(d.Workloads, TrialWorkload{
				Caches:      out.caches,
				ProbesSent:  out.probesSent,
				ProbeErrors: out.probeErrors,
			})
		}
		details = append(details, d)
	}
	return report, details
}

// round4 rounds to 4 decimals so the canonical JSON never encodes
// floating-point noise.
func round4(x float64) float64 { return math.Round(x*10000) / 10000 }

// platformCaches returns the declared cache count of a named platform
// (validated to exist).
func (s *Scenario) platformCaches(name string) int {
	for _, p := range s.Platforms {
		if p.Name == name {
			return p.Caches
		}
	}
	return 0
}

// runTrial builds one fresh world and executes every workload. With
// shards >= 1 the whole trial runs as one event-chained population on the
// world's sharded scheduler: the workload loop becomes a des.Process, so
// every probe it issues — and every recursion the target platform spawns —
// interleaves on the shared event-loop lanes instead of nesting pooled
// schedulers.
func (s *Scenario) runTrial(ctx context.Context, seed int64, shards int) (trialOut, error) {
	reg := metrics.New()
	w, err := simtest.New(simtest.Options{Seed: seed, Metrics: reg, Shards: shards})
	if err != nil {
		return trialOut{}, err
	}
	plats, err := s.compileTrial(w, seed)
	if err != nil {
		return trialOut{}, err
	}
	out := trialOut{workloads: make([]workloadOut, len(s.Workloads))}
	err = w.RunSequenced(ctx, func(ctx context.Context) error {
		for wi := range s.Workloads {
			wd := &s.Workloads[wi]
			res, err := runWorkload(ctx, w, plats[wd.Platform], wd)
			if err != nil {
				return fmt.Errorf("scenario: workload %s on %s: %w", wd.Kind, wd.Platform, err)
			}
			out.workloads[wi] = res
		}
		return nil
	})
	if err != nil {
		return trialOut{}, err
	}
	snap := reg.Snapshot()
	out.cost = CostFromSnapshot(snap)
	out.metrics = snap
	return out, nil
}

// CostFromSnapshot derives the cost roll-up from an accounting snapshot;
// the scenario runner and the campaign progress API share this mapping.
func CostFromSnapshot(snap metrics.Snapshot) Cost {
	return Cost{
		Probes:      snap.Counter("core.probes.sent"),
		ProbeErrors: snap.Counter("core.probes.errors"),
		Packets:     snap.Total("netsim.packets.sent") + snap.Total("netsim.packets.recvd"),
		PacketsLost: snap.Total("netsim.packets.lost"),
		Retries:     snap.Counter("netsim.retries"),
		FaultsInjected: snap.Counter("netsim.faults.servfail") +
			snap.Counter("netsim.faults.refused") +
			snap.Counter("netsim.faults.truncated") +
			snap.Counter("netsim.faults.duplicated") +
			snap.Counter("netsim.faults.late") +
			snap.Counter("netsim.faults.outage"),
	}
}

// runWorkload executes one workload against its target platform.
// ErrAllProbesFailed is tolerated (heavy fault profiles may starve a
// whole arm); the result then reports what was observed.
func runWorkload(ctx context.Context, w *simtest.World, target *platform.Platform, wd *WorkloadDef) (workloadOut, error) {
	ingress := target.Config().IngressIPs[0]
	opts := core.EnumOptions{Queries: wd.Queries, Replicates: wd.Replicates}

	var (
		res core.EnumResult
		err error
	)
	switch wd.Kind {
	case KindDirect:
		prober := w.DirectProber(ingress)
		if wd.Compensated {
			res, err = core.EnumerateDirectCompensated(ctx, prober, w.Infra, opts, core.CompensateOptions{})
		} else {
			res, err = core.EnumerateDirect(ctx, prober, w.Infra, opts)
		}
	case KindChain:
		res, err = core.EnumerateChain(ctx, core.NewIndirectProber(w.NewStub(ingress)), w.Infra, opts)
	case KindHierarchy:
		res, err = core.EnumerateHierarchy(ctx, core.NewIndirectProber(w.NewStub(ingress)), w.Infra, opts)
	case KindTiming:
		var tres core.TimingResult
		tres, err = core.EnumerateTimingDirect(ctx, w.DirectProber(ingress), w.Infra,
			core.TimingOptions{CountProbes: wd.Queries})
		res = core.EnumResult{Caches: tres.Caches, ProbesSent: tres.ProbesSent}
	case KindSMTP:
		policy := smtpsim.CheckPolicy{SPFTXT: true, DMARC: true, MXBounce: true}
		server := smtpsim.NewServer(wd.Platform+".example", policy, w.NewStub(ingress))
		res, err = core.EnumerateChain(ctx, smtpsim.NewProber(server), w.Infra, opts)
	case KindAdnet:
		clients := make([]*adnet.Client, 0, wd.Clients)
		for i := 0; i < wd.Clients; i++ {
			clients = append(clients, adnet.NewClient(i, 0, w.NewStub(ingress)))
		}
		res, err = core.EnumerateHierarchy(ctx, adnet.NewClientPool(clients), w.Infra, opts)
	default:
		return workloadOut{}, fmt.Errorf("unknown workload kind %q", wd.Kind)
	}
	if err != nil && !errors.Is(err, core.ErrAllProbesFailed) {
		return workloadOut{}, err
	}
	return workloadOut{
		caches:      res.Caches,
		probesSent:  int64(res.ProbesSent),
		probeErrors: int64(res.ProbeErrors),
	}, nil
}
