package scenario

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DefaultWorkerSweep is the conformance worker sweep: every scenario
// must produce byte-identical canonical reports at each of these worker
// counts before it is compared against its golden.
var DefaultWorkerSweep = []int{1, 8}

// DefaultShardSweep is the conformance shard sweep: 0 is the legacy
// single-scheduler path, the rest are sharded universes with that many
// event-loop lanes. Every scenario must produce byte-identical reports
// across the whole workers x shards cross product (DESIGN.md §12).
var DefaultShardSweep = []int{0, 1, 2, 8}

// ScenarioExt is the corpus file extension.
const ScenarioExt = ".scn"

// LoadFile parses and validates one scenario file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	sc, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// LoadDir loads every *.scn file in dir, sorted by filename, and
// rejects duplicate scenario names (golden reports are keyed by name).
func LoadDir(dir string) ([]*Scenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+ScenarioExt))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *%s files in %s", ScenarioExt, dir)
	}
	sort.Strings(paths)
	seen := map[string]string{}
	out := make([]*Scenario, 0, len(paths))
	for _, p := range paths {
		sc, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[sc.Name]; dup {
			return nil, fmt.Errorf("scenario: %s and %s both declare $SCENARIO %s", prev, p, sc.Name)
		}
		seen[sc.Name] = p
		out = append(out, sc)
	}
	return out, nil
}

// GoldenPath returns where the golden report for a scenario name lives
// relative to the corpus directory.
func GoldenPath(dir, name string) string {
	return filepath.Join(dir, "golden", name+".json")
}

// ConformanceResult is the outcome of one scenario's conformance check.
type ConformanceResult struct {
	// Scenario is the $SCENARIO name; Workers and Shards the sweep axes
	// it ran the full cross product of.
	Scenario string
	Workers  []int
	Shards   []int
	// Report is the canonical JSON produced (at every sweep point, once
	// Invariant holds).
	Report []byte
	// Invariant reports byte-identical output across the whole
	// workers x shards sweep.
	Invariant bool
	// GoldenMatch reports byte equality with the checked-in golden.
	// Updated means the golden was (re)written instead of compared.
	GoldenMatch bool
	Updated     bool
	// Detail carries a human-readable mismatch description.
	Detail string
}

// Passed reports whether the scenario conforms (or was just updated).
func (r ConformanceResult) Passed() bool {
	return r.Invariant && (r.GoldenMatch || r.Updated)
}

// RunConformance executes every scenario of the corpus in dir at the
// full cross product of the workers and shards sweeps (nil axes use
// DefaultWorkerSweep / DefaultShardSweep), asserts the canonical reports
// are byte-identical across the sweep, and diffs them against the
// checked-in goldens under dir/golden. With update set the goldens are
// regenerated instead of compared — the regeneration is itself
// deterministic, so a clean tree stays clean.
func RunConformance(ctx context.Context, dir string, workers, shards []int, update bool) ([]ConformanceResult, error) {
	if len(workers) == 0 {
		workers = DefaultWorkerSweep
	}
	if len(shards) == 0 {
		shards = DefaultShardSweep
	}
	corpus, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	results := make([]ConformanceResult, 0, len(corpus))
	for _, sc := range corpus {
		res, err := conform(ctx, sc, dir, workers, shards, update)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// conform checks one scenario.
func conform(ctx context.Context, sc *Scenario, dir string, workers, shards []int, update bool) (ConformanceResult, error) {
	res := ConformanceResult{
		Scenario: sc.Name,
		Workers:  append([]int(nil), workers...),
		Shards:   append([]int(nil), shards...),
	}
	var canonical []byte
	for _, sh := range shards {
		for _, wk := range workers {
			report, err := Run(ctx, sc, RunOptions{Workers: wk, Shards: sh})
			if err != nil {
				return res, fmt.Errorf("scenario %s (workers=%d shards=%d): %w", sc.Name, wk, sh, err)
			}
			b, err := report.CanonicalJSON()
			if err != nil {
				return res, err
			}
			if canonical == nil {
				canonical = b
				continue
			}
			if !bytes.Equal(canonical, b) {
				res.Detail = fmt.Sprintf("workers=%d shards=%d report differs from workers=%d shards=%d: %s",
					wk, sh, workers[0], shards[0], firstDiff(canonical, b))
				res.Report = canonical
				return res, nil
			}
		}
	}
	res.Invariant = true
	res.Report = canonical

	golden := GoldenPath(dir, sc.Name)
	if update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			return res, fmt.Errorf("scenario: %w", err)
		}
		if err := os.WriteFile(golden, canonical, 0o644); err != nil {
			return res, fmt.Errorf("scenario: %w", err)
		}
		res.Updated, res.GoldenMatch = true, true
		return res, nil
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		res.Detail = fmt.Sprintf("missing golden %s (regenerate with -update)", golden)
		return res, nil
	}
	if !bytes.Equal(want, canonical) {
		res.Detail = fmt.Sprintf("report drifted from %s: %s", golden, firstDiff(want, canonical))
		return res, nil
	}
	res.GoldenMatch = true
	return res, nil
}

// firstDiff describes the first differing line of two byte-wise reports.
func firstDiff(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d: want %q, got %q", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("want %d lines, got %d", len(w), len(g))
}
