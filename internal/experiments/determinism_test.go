package experiments

import (
	"context"
	"testing"
)

// TestWorkersInvariance is the determinism regression test for the detpar
// refactor: every registry experiment must render byte-identical reports
// at workers=1 and workers=8. Trial RNGs are derived per index (never
// from goroutine scheduling), results merge in index order, and metrics
// counters are commutative, so the whole report — tables, checks and the
// cost summary — must not depend on the worker count.
//
// Population sizes are scaled down so the full registry stays affordable;
// invariance does not depend on scale. In -short mode only the
// Monte-Carlo-heavy experiments run (the dataset sweeps dominate the
// runtime without exercising different machinery).
func TestWorkersInvariance(t *testing.T) {
	shortSet := map[string]bool{
		"thm51": true, "initvalidate": true, "carpet": true,
		"cost": true, "classify": true, "ablation-crosstraffic": true,
		"faults": true,
	}
	for _, id := range IDs() {
		if testing.Short() && !shortSet[id] {
			continue
		}
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) string {
				cfg := Config{
					Seed:          2017,
					OpenResolvers: 30,
					Enterprises:   20,
					ISPs:          6,
					Workers:       workers,
				}
				report, err := RunContext(context.Background(), id, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return report.Render()
			}
			seq, par := render(1), render(8)
			if seq != par {
				t.Errorf("report differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
			}
		})
	}
}

// TestShardInvariance is the determinism regression test for the sharded
// scheduler: the experiments that run their worlds on it (faults and cost
// through RunSequenced, scale natively) must render byte-identical
// reports on the legacy single scheduler (shards=0) and on sharded
// universes at every lane count, at any worker count. Source streams are
// partitioned over lanes by address key and the workloads are causal
// chains, so no draw can reorder (DESIGN.md §12).
func TestShardInvariance(t *testing.T) {
	grid := []struct{ workers, shards int }{
		{1, 1}, {8, 2}, {1, 8}, {8, 8},
	}
	if testing.Short() {
		grid = []struct{ workers, shards int }{{8, 2}, {1, 8}}
	}
	for _, id := range []string{"faults", "cost", "scale"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			render := func(workers, shards int) string {
				cfg := Config{
					Seed:         2017,
					Workers:      workers,
					Shards:       shards,
					ScaleClients: 30_000,
					ScaleCaches:  600,
				}
				report, err := RunContext(context.Background(), id, cfg)
				if err != nil {
					t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
				}
				return report.Render()
			}
			legacy := render(1, 0)
			for _, g := range grid {
				if got := render(g.workers, g.shards); got != legacy {
					t.Errorf("report differs between shards=0 and workers=%d shards=%d:\n--- legacy ---\n%s\n--- sharded ---\n%s",
						g.workers, g.shards, legacy, got)
				}
			}
		})
	}
}
