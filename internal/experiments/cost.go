package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"dnscde/internal/core"
	"dnscde/internal/detpar"
	"dnscde/internal/loadbal"
	"dnscde/internal/metrics"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// costTrials is the number of completion runs averaged per cache count.
const costTrials = 48

// CostAccounting validates the probe-cost accounting layer against
// Theorem 5.1: for each cache count n it runs repeated direct
// enumerations to completion and checks that the number of queries CDE
// actually spent — read from the internal/metrics registry, not from the
// drivers' own bookkeeping — averages to the coupon-collector bound
// n·H_n. A second set of checks pins the registry's counters to the
// drivers' counts exactly, so the two accounting paths can never drift
// apart silently.
func CostAccounting(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}

	table := &stats.Table{Header: []string{"n", "n·H_n (analytic)", "queries spent (metrics)", "tolerance"}}
	report := &Report{ID: "cost", Title: "Thm 5.1 cost accounting: metrics-measured enumeration queries vs n·H_n"}

	for _, n := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32} {
		analytic := core.ExpectedProbesToCoverAll(n)

		// The registry diff brackets the whole trial fan-out: counter
		// increments are commutative, so the delta equals the sum over
		// trials regardless of how they interleave — and the exactness
		// check against driver bookkeeping still holds at any worker
		// count. Each trial owns a world (platform, logs, RNG streams),
		// which also keeps every arrival log small; the old shared-world
		// loop had to Reset logs per n to avoid quadratic scans.
		before := cfg.Metrics.Snapshot()
		probeCounts, err := detpar.Map(ctx, detpar.Derive(cfg.Seed, 55, uint64(n)), costTrials, cfg.Workers,
			func(trial int, rng *rand.Rand) (int, error) {
				w, err := cfg.trialWorld(rng.Int63())
				if err != nil {
					return 0, err
				}
				plat, err := w.NewPlatform(simtest.PlatformSpec{
					Caches: n, Seed: int64(n),
					Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(rng.Int63()) },
				})
				if err != nil {
					return 0, err
				}
				prober := w.DirectProber(plat.Config().IngressIPs[0])
				var res core.EnumResult
				err = w.RunSequenced(ctx, func(ctx context.Context) error {
					res, err = core.EnumerateUntilComplete(ctx, prober, w.Infra, n, 400*n)
					return err
				})
				if err != nil {
					return 0, fmt.Errorf("cost: n=%d trial %d: %w", n, trial, err)
				}
				if res.Caches != n {
					return 0, fmt.Errorf("cost: n=%d trial %d: completed with %d caches", n, trial, res.Caches)
				}
				return res.ProbesSent, nil
			})
		if err != nil {
			return nil, err
		}
		driverProbes := 0
		for _, c := range probeCounts {
			driverProbes += c
		}
		diff := cfg.Metrics.Snapshot().Diff(before)
		metered := diff.Counter("core.probes.sent")
		mean := float64(metered) / costTrials

		// Monte-Carlo tolerance from the exact completion-time variance:
		// Var(T_n) = Σ_{i=1}^{n-1} (1-p)/p² with p = (n-i)/n, so the mean
		// of `costTrials` runs has σ = sqrt(Var/trials); allow 4σ (and
		// never less than one probe).
		varT := 0.0
		for i := 1; i < n; i++ {
			p := float64(n-i) / float64(n)
			varT += (1 - p) / (p * p)
		}
		tol := math.Max(1.0, 4*math.Sqrt(varT/costTrials))

		table.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", analytic),
			fmt.Sprintf("%.2f", mean), fmt.Sprintf("±%.2f", tol))
		report.Checks = append(report.Checks,
			Check{Name: fmt.Sprintf("n=%d metered queries match n·H_n", n),
				Paper: analytic, Measured: mean, Tolerance: tol},
			Check{Name: fmt.Sprintf("n=%d registry agrees with driver bookkeeping", n),
				Paper: float64(driverProbes), Measured: float64(metered), Tolerance: 0},
		)
	}
	report.Text = table.String() +
		"\nQueries spent are read from the internal/metrics registry\n" +
		"(core.probes.sent deltas), not from the enumeration drivers.\n"
	return report, nil
}
