package experiments

// Extension experiments beyond the paper's published tables and figures,
// covering the motivations of §II and the observations of §VI that the
// paper discusses but does not evaluate: cache-poisoning difficulty,
// resilience monitoring, EDNS adoption, TTL-consistency disambiguation
// and measurement through forwarders.

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"dnscde/internal/core"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/population"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// Poisoning quantifies the §II-A motivation: a k-record injection attack
// (spoofed NS + A) must land every record in the same cache. Closed form
// (1/n)^(k-1) versus Monte-Carlo through the real selectors.
func Poisoning(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	const trials = 100000

	table := &stats.Table{Header: []string{"caches n", "records k", "closed form", "random (MC)", "round-robin", "hash-qname"}}
	report := &Report{ID: "poisoning", Title: "§II-A: cache-poisoning success probability vs cache count and selection"}
	for _, tc := range []struct{ n, k int }{{1, 2}, {2, 2}, {4, 2}, {8, 2}, {4, 3}} {
		closed := core.PoisoningSuccessProbability(tc.n, tc.k)
		mcRandom := core.SimulatePoisoning(loadbal.NewRandom(cfg.Seed), tc.n, tc.k, trials)
		mcRR := core.SimulatePoisoning(loadbal.NewRoundRobin(), tc.n, tc.k, trials)
		mcHash := core.SimulatePoisoning(loadbal.HashQName{}, tc.n, tc.k, trials)
		table.AddRow(fmt.Sprintf("%d", tc.n), fmt.Sprintf("%d", tc.k),
			fmt.Sprintf("%.4f", closed), fmt.Sprintf("%.4f", mcRandom),
			fmt.Sprintf("%.4f", mcRR), fmt.Sprintf("%.4f", mcHash))
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("n=%d k=%d random MC matches (1/n)^(k-1)", tc.n, tc.k),
			Paper: closed, Measured: mcRandom, Tolerance: closed*0.05 + 0.01,
		})
	}
	report.Checks = append(report.Checks,
		Check{Name: "round robin: consecutive records never co-locate (n=4,k=2)",
			Paper: 0, Measured: core.SimulatePoisoning(loadbal.NewRoundRobin(), 4, 2, trials), Tolerance: 0},
		Check{Name: "key-dependent: multiple caches give no protection (n=8,k=3)",
			Paper: 1, Measured: core.SimulatePoisoning(loadbal.HashQName{}, 8, 3, trials), Tolerance: 0},
	)
	report.Text = table.String() +
		"\nMultiple caches with unpredictable selection raise the expected number of\n" +
		"attack iterations to n^(k-1); key-dependent selection voids the defence.\n"
	return report, nil
}

// Resilience reproduces the §II-B monitoring scenario: a platform with
// four caches loses two; repeated CDE enumeration detects the failure and
// the recovery, without cooperation from the network.
func Resilience(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	w, err := cfg.world()
	if err != nil {
		return nil, err
	}
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "monitored", Caches: 4, Seed: cfg.Seed,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(cfg.Seed) },
	})
	if err != nil {
		return nil, err
	}
	prober := w.DirectProber(plat.Config().IngressIPs[0])

	measure := func() (int, error) {
		res, err := core.EnumerateAdaptive(ctx, prober, w.Infra, core.AdaptiveOptions{})
		if err != nil {
			return 0, err
		}
		return res.Caches, nil
	}

	healthy, err := measure()
	if err != nil {
		return nil, err
	}
	plat.SetCacheDown(1, true)
	plat.SetCacheDown(3, true)
	degraded, err := measure()
	if err != nil {
		return nil, err
	}
	plat.SetCacheDown(1, false)
	plat.SetCacheDown(3, false)
	restored, err := measure()
	if err != nil {
		return nil, err
	}

	table := &stats.Table{Header: []string{"Phase", "live caches (truth)", "CDE measured"}}
	table.AddRow("healthy", "4", fmt.Sprintf("%d", healthy))
	table.AddRow("two caches down", "2", fmt.Sprintf("%d", degraded))
	table.AddRow("restored", "4", fmt.Sprintf("%d", restored))

	return &Report{
		ID:    "resilience",
		Title: "§II-B: detecting failed caches by repeated enumeration",
		Text:  table.String(),
		Checks: []Check{
			{Name: "healthy platform measures 4", Paper: 4, Measured: float64(healthy), Tolerance: 0},
			{Name: "degraded platform measures 2", Paper: 2, Measured: float64(degraded), Tolerance: 0},
			{Name: "restored platform measures 4", Paper: 4, Measured: float64(restored), Tolerance: 0},
		},
	}, nil
}

// EDNSSurvey measures EDNS0 adoption across a population (§II-C: "our
// tools enable studies of adoption of new mechanisms for DNS, such as the
// transport layer EDNS mechanism"): one probe per platform, adoption read
// from the OPT records arriving at the nameservers.
func EDNSSurvey(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := cfg.rng()
	w, err := cfg.world()
	if err != nil {
		return nil, err
	}
	size := cfg.OpenResolvers
	if size < 200 {
		size = 200
	}
	dataset := population.Generate(population.OpenResolvers, size, rng)

	truthAdopters, measuredAdopters := 0, 0
	for i, spec := range dataset.Specs {
		plat, err := deployPlatform(w, spec, int64(i))
		if err != nil {
			return nil, err
		}
		if spec.EDNS {
			truthAdopters++
		}
		session, err := w.Infra.NewHierarchySession(1)
		if err != nil {
			return nil, err
		}
		// Retransmit on loss: a lossy (e.g. Iranian) network must not be
		// misread as a non-adopter just because one probe vanished.
		prober := core.NewDirectProber(w.Net, w.NextClientAddr(), plat.Config().IngressIPs[0], 4)
		if _, err := prober.Probe(ctx, session.ProbeName(1), dnswire.TypeA); err != nil {
			continue
		}
		if w.Infra.Child.Log().EDNSShare(session.ChildOrigin) > 0 {
			measuredAdopters++
		}
	}
	truth := float64(truthAdopters) / float64(size)
	measured := float64(measuredAdopters) / float64(size)

	table := &stats.Table{Header: []string{"Metric", "Ground truth", "Measured"}}
	table.AddRow("EDNS0 adoption", stats.FormatPercent(truth), stats.FormatPercent(measured))
	return &Report{
		ID:    "edns",
		Title: "§II-C: EDNS0 adoption survey via nameserver-side OPT observation",
		Text:  table.String(),
		Checks: []Check{
			{Name: "measured adoption equals ground truth", Paper: truth, Measured: measured, Tolerance: 0.02},
			{Name: "adoption near configured rate", Paper: population.EDNSAdoptionRate, Measured: measured, Tolerance: 0.08},
		},
	}, nil
}

// _ttlProbeGap is the violator's cache lifetime; the naive test's probes
// are spaced at twice this gap so violator entries expire between them
// while honest 300s records do not.
const _ttlProbeGap = time.Second

// TTLConsistency reproduces the §II-C disambiguation claim: a naive
// TTL-consistency test (query the same record twice inside its TTL and
// flag platforms that fetch twice) misclassifies multi-cache platforms as
// TTL violators; combining it with CDE enumeration separates the cases.
func TTLConsistency(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	w, err := cfg.world()
	if err != nil {
		return nil, err
	}

	const perGroup = 20
	groups := []struct {
		label    string
		caches   int
		violator bool // cache ignores TTLs (modelled as a 1s cap)
	}{
		{"single cache, honest TTL", 1, false},
		{"multi cache (RR), honest TTL", 3, false},
		{"single cache, TTL violator", 1, true},
	}

	type outcome struct{ naiveFlagged, cdeViolator int }
	results := make([]outcome, len(groups))
	for gi, g := range groups {
		for i := 0; i < perGroup; i++ {
			plat, err := w.NewPlatform(simtest.PlatformSpec{
				Name: fmt.Sprintf("ttl-%d-%d", gi, i), Caches: g.caches,
				Seed: int64(gi*1000 + i),
				Mutate: func(c *platform.Config) {
					c.Selector = loadbal.NewRoundRobin()
					if g.violator {
						// The violator caps cached lifetimes far below
						// the record's TTL — the §II-C inconsistency.
						c.CachePolicy.MaxTTL = _ttlProbeGap
					}
				},
			})
			if err != nil {
				return nil, err
			}
			prober := w.DirectProber(plat.Config().IngressIPs[0])

			// Naive test: two queries for one fresh record, well inside
			// its TTL; a second nameserver arrival flags the platform.
			session, err := w.Infra.NewFlatSession()
			if err != nil {
				return nil, err
			}
			for j := 0; j < 2; j++ {
				if _, err := prober.Probe(ctx, session.Honey, dnswire.TypeA); err != nil {
					return nil, err
				}
				// The naive methodology waits a moment between its two
				// queries (still far inside the record's 300s TTL).
				w.Clock.Advance(2 * _ttlProbeGap)
			}
			naiveFlag := session.ObservedCaches() > 1
			if naiveFlag {
				results[gi].naiveFlagged++
			}

			// CDE disambiguation: enumerate; repeats explained by n > 1
			// are not TTL violations.
			enum, err := core.EnumerateAdaptive(ctx, prober, w.Infra, core.AdaptiveOptions{})
			if err != nil {
				return nil, err
			}
			if naiveFlag && enum.Caches == 1 {
				results[gi].cdeViolator++
			}
		}
	}

	table := &stats.Table{Header: []string{"Platform group", "naive: flagged as TTL-violating", "CDE-corrected: violator"}}
	for gi, g := range groups {
		table.AddRow(g.label,
			fmt.Sprintf("%d/%d", results[gi].naiveFlagged, perGroup),
			fmt.Sprintf("%d/%d", results[gi].cdeViolator, perGroup))
	}
	report := &Report{
		ID:    "ttlconsistency",
		Title: "§II-C: separating multiple caches from TTL inconsistency",
		Text: table.String() +
			"\nThe naive twice-within-TTL test flags every multi-cache platform; with the\n" +
			"cache count measured, only genuine violators remain flagged.\n",
		Checks: []Check{
			{Name: "honest single-cache platforms never flagged",
				Paper: 0, Measured: float64(results[0].naiveFlagged), Tolerance: 0},
			{Name: "naive test flags all honest multi-cache platforms",
				Paper: perGroup, Measured: float64(results[1].naiveFlagged), Tolerance: 0},
			{Name: "CDE clears all honest multi-cache platforms",
				Paper: 0, Measured: float64(results[1].cdeViolator), Tolerance: 0},
			{Name: "CDE keeps flagging genuine violators",
				Paper: perGroup, Measured: float64(results[2].cdeViolator), Tolerance: 0},
		},
	}
	return report, nil
}

// AblationForwarder measures enumeration through forwarding platforms
// (§VI): the nameserver-side count reflects the upstream tier but is
// bounded by the forwarder tier's misses, and a single-cache forwarder
// fully shields the upstream.
func AblationForwarder(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	table := &stats.Table{Header: []string{"forwarder caches", "upstream caches", "measured ω", "expected"}}
	report := &Report{ID: "ablation-forwarder", Title: "Ablation: CDE through forwarding platforms (§VI)"}
	upstreamIngressBase := netip.MustParseAddr("172.16.0.1")
	forwarderIngressBase := netip.MustParseAddr("172.17.0.1")

	cases := []struct{ f, u, want int }{
		{1, 4, 1}, // single-cache forwarder shields everything
		{4, 2, 2}, // forwarder misses expose both upstream caches
		{4, 4, 4}, // equal tiers, RR alignment covers all
	}
	for ci, tc := range cases {
		w, err := cfg.trialWorld(cfg.Seed + int64(ci))
		if err != nil {
			return nil, err
		}
		upIngress := upstreamIngressBase
		upstreamIngressBase = upstreamIngressBase.Next()
		fwIngress := forwarderIngressBase
		forwarderIngressBase = forwarderIngressBase.Next()

		_, err = w.NewPlatform(simtest.PlatformSpec{
			Name: "upstream", Caches: tc.u, Seed: int64(ci),
			Mutate: func(c *platform.Config) {
				c.Selector = loadbal.NewRoundRobin()
				c.IngressIPs = []netip.Addr{upIngress}
			},
		})
		if err != nil {
			return nil, err
		}
		fwd, err := w.NewPlatform(simtest.PlatformSpec{
			Name: "forwarder", Caches: tc.f, Seed: int64(ci) + 100,
			Mutate: func(c *platform.Config) {
				c.Selector = loadbal.NewRoundRobin()
				c.Roots = nil
				c.Forwarders = []netip.Addr{upIngress}
				c.IngressIPs = []netip.Addr{fwIngress}
			},
		})
		if err != nil {
			return nil, err
		}
		prober := w.DirectProber(fwd.Config().IngressIPs[0])
		res, err := core.EnumerateDirect(ctx, prober, w.Infra, core.EnumOptions{Queries: 8 * tc.f * tc.u})
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprintf("%d", tc.f), fmt.Sprintf("%d", tc.u),
			fmt.Sprintf("%d", res.Caches), fmt.Sprintf("%d", tc.want))
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("f=%d u=%d measures %d", tc.f, tc.u, tc.want),
			Paper: float64(tc.want), Measured: float64(res.Caches), Tolerance: 0,
		})
	}
	report.Text = table.String() +
		"\nA forwarder tier bounds what CDE can see of the upstream: the client-side\n" +
		"view 'only sees the forwarder' (§VI), and the nameserver only the upstream.\n"
	return report, nil
}
