package experiments

import (
	"context"
	"fmt"

	"dnscde/internal/core"
	"dnscde/internal/population"
	"dnscde/internal/stats"
)

// SelectionShare reproduces the §IV-A measurement sentence: "Our
// measurement indicates that more than 80% of the networks in our dataset
// support unpredictable cache selection." Every multi-cache platform of
// an open-resolver population is classified from the outside; platforms
// with one cache (or one visible cache) are unclassifiable and reported
// separately.
func SelectionShare(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := cfg.rng()
	w, err := cfg.world()
	if err != nil {
		return nil, err
	}
	size := cfg.OpenResolvers
	if size < 150 {
		size = 150
	}
	dataset := population.Generate(population.OpenResolvers, size, rng)

	const vantages = 16
	verdicts := map[core.SelectionClass]int{}
	truthUnpredictable, classifiable, correct := 0, 0, 0
	for i, spec := range dataset.Specs {
		plat, err := deployPlatform(w, spec, int64(i))
		if err != nil {
			return nil, err
		}
		ingress := plat.Config().IngressIPs[0]
		extras := make([]core.Prober, 0, vantages)
		for v := 0; v < vantages; v++ {
			extras = append(extras, w.DirectProber(ingress))
		}
		res, err := core.ClassifySelection(ctx, w.DirectProber(ingress), w.Infra,
			core.ClassifyOptions{ExtraVantages: extras})
		if err != nil {
			return nil, err
		}
		verdicts[res.Class]++
		if res.Class == core.ClassSingleCache {
			continue // selector unobservable
		}
		classifiable++
		truthClass := map[population.SelectorKind]core.SelectionClass{
			population.SelRandom:     core.ClassUnpredictable,
			population.SelRoundRobin: core.ClassTrafficDependent,
			population.SelHashQName:  core.ClassKeyDependent,
			population.SelHashSource: core.ClassKeyDependent,
		}[spec.Selector]
		if spec.Selector == population.SelRandom {
			truthUnpredictable++
		}
		if res.Class == truthClass {
			correct++
		}
	}

	measuredShare := 0.0
	truthShare := 0.0
	accuracy := 0.0
	if classifiable > 0 {
		measuredShare = float64(verdicts[core.ClassUnpredictable]) / float64(classifiable)
		truthShare = float64(truthUnpredictable) / float64(classifiable)
		accuracy = float64(correct) / float64(classifiable)
	}

	table := &stats.Table{Header: []string{"Verdict", "Platforms"}}
	for _, class := range []core.SelectionClass{
		core.ClassUnpredictable, core.ClassTrafficDependent, core.ClassKeyDependent, core.ClassSingleCache,
	} {
		table.AddRow(string(class), fmt.Sprintf("%d", verdicts[class]))
	}

	report := &Report{
		ID:    "selectionshare",
		Title: "§IV-A: share of networks with unpredictable cache selection",
		Text: table.String() + fmt.Sprintf(
			"\nAmong the %d platforms whose selection is observable (more than one\nvisible cache), %s are unpredictable — the paper reports \"more than 80%%\".\nGround truth %s; per-platform accuracy %s.\n",
			classifiable, stats.FormatPercent(measuredShare), stats.FormatPercent(truthShare),
			stats.FormatPercent(accuracy)),
		Checks: []Check{
			{Name: "unpredictable share > 80% (paper §IV-A)", Paper: 0.82, Measured: measuredShare, Tolerance: 0.08},
			{Name: "measured share matches ground truth", Paper: truthShare, Measured: measuredShare, Tolerance: 0.03},
			{Name: "per-platform accuracy", Paper: 1.0, Measured: accuracy, Tolerance: 0.05},
		},
	}
	return report, nil
}
