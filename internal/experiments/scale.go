package experiments

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/netsim/des"
	"dnscde/internal/stats"
)

// Scale population defaults: the ROADMAP's million-cache north-star
// checkpoint. CI runs a reduced population via -clients/-caches.
const (
	defaultScaleClients = 1_000_000
	defaultScaleCaches  = 10_000
	// scaleSrcPool is the number of distinct egress addresses the stub
	// population shares (a NAT'd client fleet): per-source RNG streams
	// carry ~5KB of math/rand state each, so the pool bounds stream
	// memory while the event loop still interleaves every client.
	scaleSrcPool = 1024
	// scaleLateEvery marks every Nth cache as pathologically late
	// (LateRate=1): all of its responses arrive after the client timer,
	// exercising the timeout-charging path at scale.
	scaleLateEvery = 100
	// scaleWave is the number of client launches per generator event,
	// one wave per simulated millisecond: bounds the in-flight set (and
	// its pooled exchange/scratch memory) without ever idling the loop.
	scaleWave = 10_000
	// scaleTimeout is the client retransmission timer; late exchanges
	// must be charged exactly this.
	scaleTimeout = 800 * time.Millisecond
)

// scaleTally accumulates completions; each lane owns one tally (the done
// callback runs on the exchange's home lane), merged commutatively after
// the run, so no counter is shared between lanes.
type scaleTally struct {
	completed int64
	failed    int64
	failedRTT time.Duration
	badErr    error
}

func (t *scaleTally) note(_ *dnswire.Message, rtt time.Duration, err error) {
	t.completed++
	if err != nil {
		t.failed++
		t.failedRTT += rtt
		if !errors.Is(err, netsim.ErrTimeout) && t.badErr == nil {
			t.badErr = err
		}
	}
}

// scaleGen is the launch generator: each firing starts one wave of client
// exchanges at the current instant and re-arms itself one simulated
// millisecond later, so launches overlap in-flight round trips and the
// scheduler carries tens of thousands of concurrent chains at any moment.
//
// On a sharded world one generator runs per lane, all walking the same
// global wave schedule; each launches only the clients whose source
// connection partitions to its lane (laneOf), so a client starts at the
// same simulated instant at any shard count and every draw its source
// stream makes stays on one event loop.
type scaleGen struct {
	ctx        context.Context
	sched      *des.Scheduler
	lane       int     // this generator's lane; -1 launches every client
	laneOf     []int32 // lane per conns index; nil when lane < 0
	conns      []*netsim.Conn
	query      *dnswire.Message
	picks      []int32
	cacheAddrs []netip.Addr
	done       func(*dnswire.Message, time.Duration, error)
	next       int
	fires      uint64
}

func (g *scaleGen) Fire(now des.Time, op uint8) {
	g.fires++
	if g.ctx.Err() != nil {
		return // cancelled: stop launching; the driver surfaces ctx.Err
	}
	end := g.next + scaleWave
	if end > len(g.picks) {
		end = len(g.picks)
	}
	for ; g.next < end; g.next++ {
		ci := g.next % len(g.conns)
		if g.lane >= 0 && g.laneOf[ci] != int32(g.lane) {
			continue
		}
		g.conns[ci].ExchangeEvent(g.ctx, g.sched, g.query, g.cacheAddrs[g.picks[g.next]], g.done)
	}
	if g.next < len(g.picks) {
		g.sched.Schedule(time.Millisecond, g, 0)
	}
}

// Scale is the DES throughput sweep: ScaleClients stub clients (default
// 1M) multiplex on the discrete-event scheduler against ScaleCaches
// simulated caches (default 10K), 1% of which respond late. With
// cfg.Shards >= 1 the same workload runs as per-lane populations on the
// sharded scheduler — the multi-core configuration bench-shard.json
// tracks — and the report is byte-identical at any shard count. The
// report asserts the PR 7 accounting fixes at population scale — exactly
// one sent and one received packet per exchange, and late exchanges
// charged the bare timeout — plus completeness and load spread.
// Wall-clock evidence lives in cdebench's wall_ms field (bench-scale.json
// and bench-shard.json in CI); the driver itself never reads a wall
// clock.
func Scale(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	clients := cfg.ScaleClients
	if clients <= 0 {
		clients = defaultScaleClients
	}
	caches := cfg.ScaleCaches
	if caches <= 0 {
		caches = defaultScaleCaches
	}

	w, err := cfg.world()
	if err != nil {
		return nil, err
	}
	net := w.Net
	net.SetTimeout(scaleTimeout)

	// Cache fleet: echo handlers tallying per-cache load into a plain
	// slice — safe because each cache's handler always runs on the one
	// lane its address partitions to (a single goroutine).
	cacheAddrs := make([]netip.Addr, caches)
	loads := make([]int64, caches)
	lateCaches := 0
	for i := range cacheAddrs {
		addr := netip.AddrFrom4([4]byte{172, 16 + byte(i>>16)&0x0f, byte(i >> 8), byte(i)})
		cacheAddrs[i] = addr
		profile := netsim.LinkProfile{OneWay: 8 * time.Millisecond}
		if (i+1)%scaleLateEvery == 0 {
			profile.Faults = &netsim.FaultProfile{LateRate: 1}
			lateCaches++
		}
		idx := i
		net.Register(addr, profile, netsim.HandlerFunc(
			func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
				loads[idx]++
				return dnswire.NewResponse(q), nil
			}))
	}

	// Pre-draw each client's cache pick (pure splitmix64 of the seed and
	// client index) and count how many land on a late cache: the failed
	// population is known exactly before the first event fires.
	picks := make([]int32, clients)
	lateAssigned := int64(0)
	for i := range picks {
		pick := int32(uint64(detpar.Derive(cfg.Seed, 77, uint64(i))) % uint64(caches))
		picks[i] = pick
		if (pick+1)%scaleLateEvery == 0 {
			lateAssigned++
		}
	}

	conns := make([]*netsim.Conn, scaleSrcPool)
	if clients < scaleSrcPool {
		conns = conns[:clients]
	}
	for i := range conns {
		conns[i] = net.Bind(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}))
	}

	query := dnswire.NewQuery(1, "probe.scale.example", dnswire.TypeA)
	before := cfg.Metrics.Snapshot()

	var (
		tally    scaleTally
		events   uint64
		genFires uint64
	)
	if ss := w.Sharded; ss != nil {
		// One generator and one tally per lane: each source connection's
		// exchanges launch, draw and settle on its partition lane.
		laneOf := make([]int32, len(conns))
		for i, c := range conns {
			laneOf[i] = int32(ss.LaneFor(c.LaneKey()))
		}
		gens := make([]*scaleGen, ss.Lanes())
		tallies := make([]scaleTally, ss.Lanes())
		for l := range gens {
			gens[l] = &scaleGen{
				ctx: ctx, sched: ss.LaneScheduler(l), lane: l, laneOf: laneOf,
				conns: conns, query: query, picks: picks, cacheAddrs: cacheAddrs,
				done: tallies[l].note,
			}
			ss.LaneScheduler(l).ScheduleAt(0, gens[l], 0)
		}
		if err := ss.Run(); err != nil {
			return nil, fmt.Errorf("scale: sharded run: %w", err)
		}
		events = ss.Dispatched()
		for l := range gens {
			genFires += gens[l].fires
			tally.completed += tallies[l].completed
			tally.failed += tallies[l].failed
			tally.failedRTT += tallies[l].failedRTT
			if tally.badErr == nil {
				tally.badErr = tallies[l].badErr
			}
		}
	} else {
		sched := w.Sched
		gen := &scaleGen{
			ctx: ctx, sched: sched, lane: -1,
			conns: conns, query: query, picks: picks, cacheAddrs: cacheAddrs,
			done: tally.note,
		}
		sched.Schedule(0, gen, 0)
		events = sched.Run()
		genFires = gen.fires
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if tally.badErr != nil {
		return nil, fmt.Errorf("scale: unexpected exchange error: %w", tally.badErr)
	}
	diff := cfg.Metrics.Snapshot().Diff(before)

	var minLoad, maxLoad, sumLoad int64
	minLoad = int64(clients)
	for _, l := range loads {
		if l < minLoad {
			minLoad = l
		}
		if l > maxLoad {
			maxLoad = l
		}
		sumLoad += l
	}
	meanLoad := float64(sumLoad) / float64(caches)

	var makespan time.Duration
	if w.Sharded != nil {
		makespan = w.Sharded.Now().Duration()
	} else {
		makespan = w.Sched.Now().Duration()
	}

	table := &stats.Table{Header: []string{"Metric", "Value"}}
	table.AddRow("stub clients", fmt.Sprintf("%d", clients))
	table.AddRow("caches", fmt.Sprintf("%d (%d late)", caches, lateCaches))
	// Generator firings are excluded: the sharded path runs one generator
	// per lane over the same wave schedule, so only the exchange-chain
	// event count is comparable — and it is identical at any shard count.
	table.AddRow("events dispatched", fmt.Sprintf("%d", events-genFires))
	table.AddRow("simulated makespan", makespan.String())
	table.AddRow("completed / failed", fmt.Sprintf("%d / %d", tally.completed, tally.failed))
	table.AddRow("cache load min/mean/max", fmt.Sprintf("%d / %.1f / %d", minLoad, meanLoad, maxLoad))

	report := &Report{
		ID:    "scale",
		Title: fmt.Sprintf("DES scale sweep: %d stub clients vs %d caches on one event loop", clients, caches),
		Text:  table.String(),
	}
	report.Checks = append(report.Checks,
		Check{Name: "every client exchange settles",
			Paper: float64(clients), Measured: float64(tally.completed)},
		Check{Name: "one sent packet per exchange (no double count)",
			Paper: float64(clients), Measured: float64(diff.Counter("netsim.packets.sent"))},
		Check{Name: "one received response per exchange (late included)",
			Paper: float64(clients), Measured: float64(diff.Counter("netsim.packets.recvd"))},
		Check{Name: "failures are exactly the late-cache assignments",
			Paper: float64(lateAssigned), Measured: float64(tally.failed)},
	)
	if tally.failed > 0 {
		// Each late exchange must cost the bare timeout: the client's
		// retransmission timer runs concurrently with the server's work.
		report.Checks = append(report.Checks,
			Check{Name: "late exchanges charged exactly the bare timeout",
				Paper:     1,
				Measured:  float64(tally.failedRTT) / (float64(tally.failed) * float64(scaleTimeout)),
				Tolerance: 1e-9})
	}
	if meanLoad >= 50 {
		// With ≥50 expected queries per cache the splitmix64 pick spread
		// is tight: every cache is exercised and no cache sees more than
		// twice the mean.
		report.Checks = append(report.Checks,
			Check{Name: "every cache exercised",
				Paper: 1, Measured: boolMeasure(minLoad > 0)},
			Check{Name: "max cache load under 2x mean",
				Paper: 1, Measured: boolMeasure(float64(maxLoad) < 2*meanLoad)},
		)
	}
	return report, nil
}

// boolMeasure renders a predicate as a Check measurement.
func boolMeasure(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}
