package experiments

import (
	"context"
	"fmt"
	"strings"

	"dnscde/internal/population"
	"dnscde/internal/stats"
)

// scatterReport builds the bubble-scatter report (ingress IPs vs measured
// caches) for one population — the shared machinery of Figs. 5, 7 and 8.
func scatterReport(ctx context.Context, cfg Config, id, title string, kind population.Kind, count int, checks func([]measurement) []Check) (*Report, error) {
	rng := cfg.rng()
	w, err := cfg.world()
	if err != nil {
		return nil, err
	}
	dataset := population.Generate(kind, count, rng)
	ms, err := measureDataset(ctx, cfg, w, dataset, false)
	if err != nil {
		return nil, err
	}
	ok := successful(ms)

	xs := make([]int, 0, len(ok))
	ys := make([]int, 0, len(ok))
	for _, m := range ok {
		xs = append(xs, m.spec.Ingress)
		ys = append(ys, m.caches)
	}
	bubbles := stats.BubbleBin(xs, ys, 2)

	var sb strings.Builder
	sb.WriteString("Bubble scatter (x = ingress IP addresses, y = measured caches,\nbubble size = number of networks; log-2 binned):\n\n")
	table := &stats.Table{Header: []string{"IPs", "Caches", "Networks"}}
	for _, b := range bubbles {
		table.AddRow(fmt.Sprintf("%d", b.X), fmt.Sprintf("%d", b.Y), fmt.Sprintf("%d", b.Count))
	}
	sb.WriteString(table.String())

	report := &Report{ID: id, Title: title, Text: sb.String()}
	if checks != nil {
		report.Checks = checks(ok)
	}
	return report, nil
}

// fracWhere returns the fraction of measurements satisfying pred.
func fracWhere(ms []measurement, pred func(measurement) bool) float64 {
	if len(ms) == 0 {
		return 0
	}
	n := 0
	for _, m := range ms {
		if pred(m) {
			n++
		}
	}
	return float64(n) / float64(len(ms))
}

// Figure5 reproduces Fig. 5: IP addresses vs caches for networks with
// open resolvers — dominated by the 1-IP/1-cache mass, with a sparse tail
// of huge platforms (>500 IPs, >30 caches).
func Figure5(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	return scatterReport(ctx, cfg, "fig5",
		"IP addresses vs caches in DNS platforms with open resolvers",
		population.OpenResolvers, cfg.OpenResolvers,
		func(ms []measurement) []Check {
			return []Check{
				{Name: "largest mass at 1 IP / 1 cache", Paper: 0.70,
					Measured:  fracWhere(ms, func(m measurement) bool { return m.spec.Ingress == 1 && m.caches == 1 }),
					Tolerance: 0.10},
				{Name: "tail with >10 IPs exists", Paper: 0.05,
					Measured:  fracWhere(ms, func(m measurement) bool { return m.spec.Ingress > 10 }),
					Tolerance: 0.06},
			}
		})
}

// Figure7 reproduces Fig. 7: IP addresses vs caches for the SMTP
// (enterprise) population — scattered, more even, fewer IPs than the
// open-resolver giants.
func Figure7(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	return scatterReport(ctx, cfg, "fig7",
		"IP addresses vs caches count in SMTP population",
		population.Enterprises, cfg.Enterprises,
		func(ms []measurement) []Check {
			return []Check{
				{Name: "single IP + single cache rare", Paper: 0.04,
					Measured:  fracWhere(ms, func(m measurement) bool { return m.spec.Ingress == 1 && m.caches == 1 }),
					Tolerance: 0.05},
				{Name: "multi IP + multi cache dominates", Paper: 0.83,
					Measured:  fracWhere(ms, func(m measurement) bool { return m.spec.Ingress > 1 && m.caches > 1 }),
					Tolerance: 0.10},
			}
		})
}

// Figure8 reproduces Fig. 8: IP addresses vs caches for the ad-network
// (ISP) population — the fewest caches and smallest IP counts of the
// three datasets.
func Figure8(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	return scatterReport(ctx, cfg, "fig8",
		"IP addresses vs caches count in ad-network population",
		population.ISPs, cfg.ISPs,
		func(ms []measurement) []Check {
			return []Check{
				{Name: "single IP + single cache below 10%", Paper: 0.08,
					Measured:  fracWhere(ms, func(m measurement) bool { return m.spec.Ingress == 1 && m.caches == 1 }),
					Tolerance: 0.06},
				{Name: "multi IP + multi cache around 65%", Paper: 0.65,
					Measured:  fracWhere(ms, func(m measurement) bool { return m.spec.Ingress > 1 && m.caches > 1 }),
					Tolerance: 0.12},
			}
		})
}

// Figure6 reproduces Fig. 6: the share of platforms per cache-to-IP
// category across the three populations, using ground-truth ingress
// counts and CDE-measured cache counts.
func Figure6(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ms, err := datasetMeasurements(ctx, cfg, false)
	if err != nil {
		return nil, err
	}

	categories := []struct {
		label string
		pred  func(measurement) bool
	}{
		{"1 IP, 1 cache", func(m measurement) bool { return m.spec.Ingress == 1 && m.caches == 1 }},
		{"1 IP, >1 cache", func(m measurement) bool { return m.spec.Ingress == 1 && m.caches > 1 }},
		{">1 IP, 1 cache", func(m measurement) bool { return m.spec.Ingress > 1 && m.caches == 1 }},
		{">1 IP, >1 cache", func(m measurement) bool { return m.spec.Ingress > 1 && m.caches > 1 }},
	}
	table := &stats.Table{Header: []string{"Category", "Open resolvers", "Enterprises", "ISPs"}}
	shares := map[population.Kind]map[string]float64{}
	for kind, list := range ms {
		shares[kind] = map[string]float64{}
		for _, cat := range categories {
			shares[kind][cat.label] = fracWhere(list, cat.pred)
		}
	}
	for _, cat := range categories {
		table.AddRow(cat.label,
			stats.FormatPercent(shares[population.OpenResolvers][cat.label]),
			stats.FormatPercent(shares[population.Enterprises][cat.label]),
			stats.FormatPercent(shares[population.ISPs][cat.label]))
	}

	report := &Report{
		ID:    "fig6",
		Title: "IP addresses vs caches count across three network populations",
		Text:  table.String(),
		Checks: []Check{
			{Name: "open resolvers single/single ≈ 70%", Paper: 0.70,
				Measured: shares[population.OpenResolvers]["1 IP, 1 cache"], Tolerance: 0.10},
			{Name: "ISPs single/single < 10%", Paper: 0.08,
				Measured: shares[population.ISPs]["1 IP, 1 cache"], Tolerance: 0.06},
			{Name: "enterprises single/single < 5%", Paper: 0.04,
				Measured: shares[population.Enterprises]["1 IP, 1 cache"], Tolerance: 0.04},
			{Name: "ISPs multi/multi ≈ 65%", Paper: 0.65,
				Measured: shares[population.ISPs][">1 IP, >1 cache"], Tolerance: 0.12},
			{Name: "enterprises multi/multi > 80%", Paper: 0.83,
				Measured: shares[population.Enterprises][">1 IP, >1 cache"], Tolerance: 0.10},
		},
	}
	return report, nil
}
