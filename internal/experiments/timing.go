package experiments

import (
	"context"
	"fmt"
	"time"

	"dnscde/internal/core"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// TimingChannel reproduces §IV-B3: cache enumeration via the latency side
// channel, with no cooperating nameserver log — for direct ingress access
// (open-resolver style) and indirect access (web-browser style). It
// reports measured cache counts against ground truth and the separation
// between cached and uncached latency.
func TimingChannel(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	table := &stats.Table{Header: []string{
		"Access", "n (truth)", "measured", "threshold", "cached RTT", "uncached RTT"}}
	report := &Report{ID: "timing", Title: "§IV-B3 timing side channel: counting caches from response latency"}

	for _, n := range []int{1, 2, 4, 8} {
		w, err := cfg.trialWorld(cfg.Seed + int64(n))
		if err != nil {
			return nil, err
		}
		plat, err := w.NewPlatform(simtest.PlatformSpec{
			Caches: n, Seed: int64(n),
			Profile: netsim.LinkProfile{OneWay: 2 * time.Millisecond, Jitter: time.Millisecond},
			Mutate: func(c *platform.Config) {
				c.Selector = loadbal.NewRandom(int64(n * 13))
				c.CacheHitDelay = 200 * time.Microsecond
			},
		})
		if err != nil {
			return nil, err
		}
		ingress := plat.Config().IngressIPs[0]

		direct, err := core.EnumerateTimingDirect(ctx, w.DirectProber(ingress), w.Infra, core.TimingOptions{
			CountProbes: core.RecommendedQueries(n, 0.999),
		})
		if err != nil {
			return nil, err
		}
		table.AddRow("direct", fmt.Sprintf("%d", n), fmt.Sprintf("%d", direct.Caches),
			direct.Threshold.String(),
			meanDur(direct.CachedRTTs).String(), meanDur(direct.UncachedRTTs).String())
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("direct timing recovers n=%d", n),
			Paper: float64(n), Measured: float64(direct.Caches), Tolerance: 0.5,
		})

		indirect, err := core.EnumerateTimingIndirect(ctx, core.NewIndirectProber(w.NewStub(ingress)), w.Infra, core.TimingOptions{
			CountProbes: core.RecommendedQueries(n, 0.999),
		})
		if err != nil {
			return nil, err
		}
		table.AddRow("indirect", fmt.Sprintf("%d", n), fmt.Sprintf("%d", indirect.Caches),
			indirect.Threshold.String(),
			meanDur(indirect.CachedRTTs).String(), meanDur(indirect.UncachedRTTs).String())
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("indirect timing recovers n=%d", n),
			Paper: float64(n), Measured: float64(indirect.Caches), Tolerance: 0.5,
		})
	}
	report.Text = table.String()
	return report, nil
}

// meanDur returns the mean of ds (0 when empty).
func meanDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
