package experiments

import (
	"context"
	"fmt"

	"dnscde/internal/population"
	"dnscde/internal/stats"
)

// Figure2 reproduces Fig. 2: the distribution of network operators across
// the three datasets. The populations are generated with the published
// shares as sampling weights; the experiment verifies that the realised
// datasets reproduce them.
func Figure2(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := cfg.rng()

	// Operator shares need a decent sample; generation is free, so floor
	// the sizes near the paper's dataset scale.
	floor := func(n int) int {
		if n < 600 {
			return 600
		}
		return n
	}
	datasets := []struct {
		label string
		kind  population.Kind
		count int
		table []population.OperatorShare
	}{
		{"Open Resolvers", population.OpenResolvers, floor(cfg.OpenResolvers), population.OpenResolverOperators},
		{"Email Servers", population.Enterprises, floor(cfg.Enterprises), population.EnterpriseOperators},
		{"Ad-Network", population.ISPs, floor(cfg.ISPs), population.ISPOperators},
	}

	report := &Report{ID: "fig2", Title: "Distribution of Internet network operators across the datasets"}
	text := ""
	for _, ds := range datasets {
		generated := population.Generate(ds.kind, ds.count, rng)
		shares := generated.OperatorShares()
		table := &stats.Table{Header: []string{ds.label, "Paper", "Measured"}}
		for _, op := range ds.table {
			got := shares[op.Name]
			table.AddRow(op.Name, fmt.Sprintf("%.3f%%", op.Share), stats.FormatPercent(got))
		}
		text += table.String() + "\n"
		// Check the dominant operator and the OTHER mass per dataset.
		top := ds.table[0]
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("%s: %s share", ds.label, top.Name),
			Paper: top.Share / 100, Measured: shares[top.Name], Tolerance: 0.06,
		})
		other := ds.table[len(ds.table)-1]
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("%s: OTHER share", ds.label),
			Paper: other.Share / 100, Measured: shares["OTHER"], Tolerance: 0.08,
		})
	}
	report.Text = text
	return report, nil
}
