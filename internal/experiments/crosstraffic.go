package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"

	"dnscde/internal/core"
	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// AblationCrossTraffic examines the §V-B caveat that enumeration
// complexity "depends on the cache selection algorithm, and on the
// traffic from other clients, arriving to the resolution platform":
// background client queries are interleaved with the prober's, at
// varying intensity.
//
// Expected shape: enumeration *counts* stay correct for every strategy
// (arrivals are still one per cache), but under round robin the
// *arrival-order* signal is destroyed — with cross traffic the prober's
// consecutive probes no longer land on consecutive caches, so the
// strategy classifier degrades traffic-dependent platforms to
// "unpredictable", exactly why the paper scopes its Theorem 5.1 analysis
// to the no-cross-traffic case.
func AblationCrossTraffic(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	const n = 4
	const trials = 10

	table := &stats.Table{Header: []string{
		"Selector", "background q/probe", "mean measured caches", "classified traffic-dependent"}}
	report := &Report{ID: "ablation-crosstraffic", Title: "Ablation: enumeration and classification under cross traffic (§V-B)"}

	type ctTrial struct {
		caches     int
		trafficDep bool
	}
	for si, sel := range []struct {
		label string
		make  func(seed int64) loadbal.Selector
	}{
		{"round-robin", func(int64) loadbal.Selector { return loadbal.NewRoundRobin() }},
		{"random", func(seed int64) loadbal.Selector { return loadbal.NewRandom(seed) }},
	} {
		for _, bg := range []int{0, 1, 4} {
			// Each trial already owns its world; the seeds stay keyed on the
			// trial index (not the detpar stream) so the measured behaviour
			// is identical to the old sequential sweep.
			results, err := detpar.Map(ctx, detpar.Derive(cfg.Seed, 57, uint64(si), uint64(bg)), trials, cfg.Workers,
				func(trial int, _ *rand.Rand) (ctTrial, error) {
					seed := cfg.Seed + int64(trial)
					w, err := cfg.trialWorld(seed)
					if err != nil {
						return ctTrial{}, err
					}
					plat, err := w.NewPlatform(simtest.PlatformSpec{
						Caches: n, Seed: seed,
						Mutate: func(c *platform.Config) { c.Selector = sel.make(seed) },
					})
					if err != nil {
						return ctTrial{}, err
					}
					ingress := plat.Config().IngressIPs[0]
					prober := newNoisyProber(w, ingress, bg, seed)

					enum, err := core.EnumerateDirect(ctx, prober, w.Infra, core.EnumOptions{
						Queries: core.RecommendedQueries(n, 0.999),
					})
					if err != nil {
						return ctTrial{}, err
					}
					cls, err := core.ClassifySelection(ctx, prober, w.Infra, core.ClassifyOptions{})
					if err != nil {
						return ctTrial{}, err
					}
					return ctTrial{
						caches:     enum.Caches,
						trafficDep: cls.Class == core.ClassTrafficDependent,
					}, nil
				})
			if err != nil {
				return nil, err
			}
			caches := 0.0
			classifiedTD := 0
			for _, r := range results {
				caches += float64(r.caches)
				if r.trafficDep {
					classifiedTD++
				}
			}
			table.AddRow(sel.label, fmt.Sprintf("%d", bg),
				fmt.Sprintf("%.2f", caches/trials), fmt.Sprintf("%d/%d", classifiedTD, trials))

			// Enumeration must stay correct regardless of cross traffic.
			report.Checks = append(report.Checks, Check{
				Name:  fmt.Sprintf("%s bg=%d: cache count unaffected", sel.label, bg),
				Paper: n, Measured: caches / trials, Tolerance: 0.2,
			})
			switch {
			case sel.label == "round-robin" && bg == 0:
				report.Checks = append(report.Checks, Check{
					Name:  "round-robin without cross traffic classified traffic-dependent",
					Paper: float64(trials), Measured: float64(classifiedTD), Tolerance: 0,
				})
			case sel.label == "round-robin" && bg >= 4:
				report.Checks = append(report.Checks, Check{
					Name:  fmt.Sprintf("round-robin with bg=%d mostly loses the sequential signal", bg),
					Paper: 0, Measured: float64(classifiedTD), Tolerance: 3,
				})
			case sel.label == "random":
				report.Checks = append(report.Checks, Check{
					Name:  fmt.Sprintf("random bg=%d never classified traffic-dependent", bg),
					Paper: 0, Measured: float64(classifiedTD), Tolerance: 0,
				})
			}
		}
	}
	report.Text = table.String() +
		"\nCache *counts* are robust to cross traffic (arrivals stay one per cache);\n" +
		"the arrival-order signal that identifies round robin is not — with other\n" +
		"clients interleaved, traffic-dependent selection looks unpredictable from\n" +
		"any single prober's viewpoint, as §V-B's no-cross-traffic assumption implies.\n"
	return report, nil
}

// noisyProber wraps a direct prober, issuing background client queries
// (random fresh names from a different client host) around each probe —
// the "traffic from other clients" of §V-B.
type noisyProber struct {
	inner      *core.DirectProber
	background *core.DirectProber
	perProbe   int
	rng        *rand.Rand
	counter    int
}

func newNoisyProber(w *simtest.World, ingress netip.Addr, perProbe int, seed int64) core.Prober {
	return &noisyProber{
		inner:      w.DirectProber(ingress),
		background: w.DirectProber(ingress),
		perProbe:   perProbe,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Probe implements core.Prober. The number of interleaved background
// queries is randomised around perProbe: deterministic strides would
// alias a round-robin pointer (a fixed stride coprime with n still walks
// every cache; a stride sharing a factor with n pins the prober to a
// subset), whereas real cross traffic arrives with random counts.
func (p *noisyProber) Probe(ctx context.Context, name string, qtype dnswire.Type) (core.ProbeResult, error) {
	burst := 0
	if p.perProbe > 0 {
		burst = p.rng.Intn(2*p.perProbe + 1)
	}
	for i := 0; i < burst; i++ {
		p.counter++
		bgName := fmt.Sprintf("bg-%d-%d.cache.example.", p.rng.Intn(1<<30), p.counter)
		_, _ = p.background.Probe(ctx, bgName, dnswire.TypeA)
	}
	return p.inner.Probe(ctx, name, qtype)
}

// Direct implements core.Prober.
func (p *noisyProber) Direct() bool { return true }
