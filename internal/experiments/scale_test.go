package experiments

import (
	"context"
	"testing"

	"dnscde/internal/population"
)

// TestScaleFullPaperPopulation measures a population at the paper's own
// scale (1K open-resolver networks) end to end. It is the closest thing
// to the original study's workload and takes tens of seconds, so it is
// skipped in -short runs.
func TestScaleFullPaperPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale population is slow")
	}
	cfg := Config{Seed: 2017, OpenResolvers: 1000}.withDefaults()
	rng := cfg.rng()
	w, err := cfg.world()
	if err != nil {
		t.Fatal(err)
	}
	dataset := population.Generate(population.OpenResolvers, 1000, rng)
	ms, err := measureDataset(context.Background(), cfg, w, dataset, false)
	if err != nil {
		t.Fatal(err)
	}
	ok := successful(ms)
	if len(ok) < 990 {
		t.Fatalf("only %d/1000 networks measured", len(ok))
	}
	exact := 0
	for _, m := range ok {
		if m.caches == m.spec.Caches {
			exact++
		}
	}
	rate := float64(exact) / float64(len(ok))
	t.Logf("paper-scale run: %d networks, exact recovery %.1f%%", len(ok), rate*100)
	if rate < 0.95 {
		t.Errorf("exact recovery %.3f below 95%% at scale", rate)
	}
}
