package experiments

import (
	"context"
	"fmt"

	"dnscde/internal/adnet"
	"dnscde/internal/core"
	"dnscde/internal/detpar"
	"dnscde/internal/population"
	"dnscde/internal/simtest"
	"dnscde/internal/smtpsim"
)

// _adClientsPerISP is how many ad-network clients probe each ISP. It must
// comfortably exceed the coupon-collector bound for the largest ISP cache
// pool so that hash-by-source-IP platforms are covered (the paper's
// campaign had far more: >12K clients across ~240 ISPs).
const _adClientsPerISP = 128

// measurement is the CDE view of one network, next to its ground truth.
type measurement struct {
	spec population.NetworkSpec
	// egress is the number of egress IPs CDE discovered; caches the
	// measured cache count.
	egress int
	caches int
	// err records a failed measurement (kept for the error rate).
	err error
}

// measureDataset deploys every spec of a dataset and measures it with the
// population's collection channel: direct probing for open resolvers,
// SMTP for enterprises, ad-network web clients for ISPs. Platforms are
// deployed sequentially (the address allocator is not concurrent); the
// measurements run on a detpar pool of cfg.Workers workers. Each target
// measures through its own Infra shard, so session (probe) names — which
// hash-based cache selectors turn into measured results — depend only on
// the target's index, never on goroutine scheduling; results are
// therefore byte-identical at any worker count. Cancelling ctx stops the
// fan-out between targets.
func measureDataset(ctx context.Context, cfg Config, w *simtest.World, dataset population.Dataset, measureEgress bool) ([]measurement, error) {
	type target struct {
		spec   population.NetworkSpec
		prober core.Prober
	}
	targets := make([]target, 0, len(dataset.Specs))
	for i, spec := range dataset.Specs {
		plat, err := deployPlatform(w, spec, int64(i))
		if err != nil {
			return nil, fmt.Errorf("deploying %s: %w", spec.Name, err)
		}
		ingress := plat.Config().IngressIPs[0]
		var prober core.Prober
		switch dataset.Kind {
		case population.OpenResolvers:
			prober = w.DirectProber(ingress)
		case population.Enterprises:
			srv := smtpsim.NewServer(spec.Name+".example", spec.SMTPPolicy, w.NewStub(ingress))
			prober = smtpsim.NewProber(srv)
		default: // ISPs via ad-network web clients
			// Many clients of the same ISP participate, each with its own
			// source address and local caches — the property that lets
			// the channel cover hash-by-source-IP platforms.
			clients := make([]*adnet.Client, 0, _adClientsPerISP)
			for c := 0; c < _adClientsPerISP; c++ {
				clients = append(clients, adnet.NewClient(i*1000+c, 0, w.NewStub(ingress)))
			}
			prober = adnet.NewClientPool(clients)
		}
		targets = append(targets, target{spec: spec, prober: prober})
	}

	results := make([]measurement, len(targets))
	err := detpar.Each(ctx, len(targets), cfg.Workers, func(i int) error {
		results[i] = measureOne(ctx, w.Infra.Shard(i), targets[i].spec, targets[i].prober, measureEgress)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// measureOne runs the CDE measurements for a single network against the
// given infrastructure view (a per-target shard under parallel runs).
func measureOne(ctx context.Context, in *core.Infra, spec population.NetworkSpec, prober core.Prober, measureEgress bool) measurement {
	m := measurement{spec: spec}

	// Carpet bombing: replicate probes according to the network's loss
	// rate (§V), which a real measurement estimates from a pre-probe.
	perExchangeLoss := 1 - (1-spec.Loss)*(1-spec.Loss)
	replicates := core.CarpetBombingFactor(perExchangeLoss, 0.99)

	enum, err := core.EnumerateAdaptive(ctx, prober, in, core.AdaptiveOptions{
		Replicates: replicates,
	})
	if err != nil {
		m.err = fmt.Errorf("enumerating %s: %w", spec.Name, err)
		return m
	}
	if enum.Caches == 0 {
		// The channel triggered no observable queries (e.g. an SMTP
		// server performing no sender checks and no bounce lookups).
		// The paper's populations are selected by observed queries
		// (§III-B surveys "domains with emails" whose resolvers issued
		// requests), so such networks drop out of the dataset.
		m.err = fmt.Errorf("%s: channel triggered no observable queries", spec.Name)
		return m
	}
	m.caches = enum.Caches

	if measureEgress {
		eg, err := core.DiscoverEgressAdaptive(ctx, prober, in, 32, 4096)
		if err != nil {
			m.err = fmt.Errorf("egress discovery %s: %w", spec.Name, err)
			return m
		}
		m.egress = len(eg.IPs)
	}
	return m
}

// successful filters out failed measurements.
func successful(ms []measurement) []measurement {
	out := make([]measurement, 0, len(ms))
	for _, m := range ms {
		if m.err == nil {
			out = append(out, m)
		}
	}
	return out
}
