package experiments

import (
	"context"
	"fmt"
	"strings"

	"dnscde/internal/dnswire"
	"dnscde/internal/population"
	"dnscde/internal/simtest"
	"dnscde/internal/smtpsim"
	"dnscde/internal/stats"
)

// TableI reproduces Table I: the DNS query types triggered while probing
// the enterprise (SMTP) population. One probe email is sent to each
// enterprise's server; the query types arriving at the CDE nameservers
// are classified per category and the per-server fractions reported.
func TableI(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := cfg.rng()
	w, err := cfg.world()
	if err != nil {
		return nil, err
	}
	// Table I compares population *shares*, which need a decent sample;
	// one email per server is cheap, so floor the size near the paper's 1K.
	size := cfg.Enterprises
	if size < 600 {
		size = 600
	}
	dataset := population.Generate(population.Enterprises, size, rng)

	counts := map[string]int{}
	for i, spec := range dataset.Specs {
		srv, err := deployEnterprise(w, spec, int64(i))
		if err != nil {
			return nil, fmt.Errorf("deploying %s: %w", spec.Name, err)
		}
		// One probe email with a unique prober-owned sender domain.
		session, err := w.Infra.NewFlatSession()
		if err != nil {
			return nil, err
		}
		markBefore := w.Infra.Parent.Log().Len()
		if err := smtpsim.SendProbe(ctx, srv, session.Honey); err != nil {
			return nil, fmt.Errorf("probing %s: %w", spec.Name, err)
		}
		for category := range classifyQueries(w, session.Honey, markBefore) {
			counts[category]++
		}
	}

	total := float64(len(dataset.Specs))
	measured := map[string]float64{}
	for category, c := range counts {
		measured[category] = float64(c) / total
	}

	rows := []struct {
		label, key string
		paper      float64
	}{
		{"Modern SPF queries (TXT qtype)", "spf-txt", 0.696},
		{"Obsolete SPF [RFC7208] (SPF qtype)", "spf-qtype", 0.142},
		{"ADSP (w/DKIM)", "adsp", 0.02},
		{"DKIM", "dkim", 0.003},
		{"DMARC", "dmarc", 0.353},
		{"MX/A queries for sending email server", "mx-bounce", 0.304},
	}
	table := &stats.Table{Header: []string{"Query type", "Paper", "Measured"}}
	report := &Report{ID: "table1", Title: "DNS queries generated during the SMTP population data collection"}
	for _, row := range rows {
		table.AddRow(row.label, stats.FormatPercent(row.paper), stats.FormatPercent(measured[row.key]))
		tolerance := 0.05
		if row.paper < 0.05 {
			tolerance = 0.02
		}
		report.Checks = append(report.Checks, Check{
			Name: row.label, Paper: row.paper, Measured: measured[row.key], Tolerance: tolerance,
		})
	}
	report.Text = table.String()
	return report, nil
}

// classifyQueries scans log entries after mark for queries related to the
// probe sender domain and returns the Table I categories they belong to.
func classifyQueries(w *simtest.World, senderDomain string, mark int) map[string]bool {
	senderDomain = dnswire.CanonicalName(senderDomain)
	out := make(map[string]bool)
	for _, e := range w.Infra.Parent.Log().Entries()[mark:] {
		name := e.Q.Name
		switch {
		case name == senderDomain && e.Q.Type == dnswire.TypeTXT:
			out["spf-txt"] = true
		case name == senderDomain && e.Q.Type == dnswire.TypeSPF:
			out["spf-qtype"] = true
		case name == "_dmarc."+senderDomain:
			out["dmarc"] = true
		case name == "_adsp._domainkey."+senderDomain:
			out["adsp"] = true
		case strings.HasSuffix(name, "._domainkey."+senderDomain) && !strings.Contains(name, "_adsp"):
			out["dkim"] = true
		case name == senderDomain && (e.Q.Type == dnswire.TypeMX || e.Q.Type == dnswire.TypeA):
			out["mx-bounce"] = true
		}
	}
	return out
}

// deployEnterprise builds the enterprise's resolution platform and SMTP
// server from its spec.
func deployEnterprise(w *simtest.World, spec population.NetworkSpec, seed int64) (*smtpsim.Server, error) {
	plat, err := deployPlatform(w, spec, seed)
	if err != nil {
		return nil, err
	}
	resolver := w.NewStub(plat.Config().IngressIPs[0])
	return smtpsim.NewServer(fmt.Sprintf("%s.example", spec.Name), spec.SMTPPolicy, resolver), nil
}
