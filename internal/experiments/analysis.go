package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"dnscde/internal/core"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// Theorem51 validates Theorem 5.1 (E[X] = n·H_n for uniform cache
// selection) two ways: a pure Monte-Carlo coupon-collector simulation and
// an end-to-end measurement against live platforms, counting probes until
// enumeration covers all n caches.
func Theorem51(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := cfg.rng()
	w, err := cfg.world()
	if err != nil {
		return nil, err
	}

	table := &stats.Table{Header: []string{"n", "n·H_n (analytic)", "Monte-Carlo", "End-to-end"}}
	report := &Report{ID: "thm51", Title: "Theorem 5.1: expected probes to cover all n caches (coupon collector)"}
	ctx := context.Background()

	for _, n := range []int{2, 4, 8, 16, 32} {
		analytic := core.ExpectedProbesToCoverAll(n)

		// Monte-Carlo coupon collector.
		const trials = 1000
		mcTotal := 0
		for trial := 0; trial < trials; trial++ {
			covered := make([]bool, n)
			remaining := n
			for remaining > 0 {
				idx := rng.Intn(n)
				if !covered[idx] {
					covered[idx] = true
					remaining--
				}
				mcTotal++
			}
		}
		mc := float64(mcTotal) / trials

		// End-to-end: probe a live platform with a fresh honey name per
		// trial, counting probes until the nameserver has seen n arrivals.
		const e2eTrials = 30
		e2eTotal := 0
		plat, err := w.NewPlatform(simtest.PlatformSpec{
			Caches: n, Seed: int64(n),
			Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(int64(n) * 31) },
		})
		if err != nil {
			return nil, err
		}
		prober := w.DirectProber(plat.Config().IngressIPs[0])
		for trial := 0; trial < e2eTrials; trial++ {
			session, err := w.Infra.NewFlatSession()
			if err != nil {
				return nil, err
			}
			probes := 0
			for session.ObservedCaches() < n {
				probes++
				if _, err := prober.Probe(ctx, session.Honey, dnswire.TypeA); err != nil {
					continue
				}
				if probes > 200*n {
					return nil, fmt.Errorf("thm51: runaway trial for n=%d", n)
				}
			}
			e2eTotal += probes
		}
		e2e := float64(e2eTotal) / e2eTrials

		table.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", analytic),
			fmt.Sprintf("%.2f", mc), fmt.Sprintf("%.2f", e2e))
		report.Checks = append(report.Checks,
			Check{Name: fmt.Sprintf("n=%d Monte-Carlo matches n·H_n", n),
				Paper: analytic, Measured: mc, Tolerance: analytic * 0.08},
			Check{Name: fmt.Sprintf("n=%d end-to-end matches n·H_n", n),
				Paper: analytic, Measured: e2e, Tolerance: analytic * 0.20},
		)
	}
	report.Text = table.String()
	return report, nil
}

// InitValidateSweep reproduces the §V-B init/validate analysis: for
// several N/n ratios it measures the fraction of caches covered during
// init (paper: 1 - exp(-N/n)) and the number of validate probes answered
// from cache, compared with the paper's N·(1-exp(-N/n))² estimate.
func InitValidateSweep(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	w, err := cfg.world()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	const n = 8
	const trials = 40
	table := &stats.Table{Header: []string{
		"N/n", "coverage (meas)", "1-e^-N/n", "validate hits (meas)", "N(1-e^-N/n)^2", "caches found"}}
	report := &Report{ID: "initvalidate", Title: "§V-B init/validate protocol: coverage and success rate vs N/n"}

	for _, ratio := range []int{1, 2, 4, 8} {
		bigN := ratio * n
		coverSum, hitsSum, cachesSum := 0.0, 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			plat, err := w.NewPlatform(simtest.PlatformSpec{
				Caches: n, Seed: int64(ratio*1000 + trial),
				Mutate: func(c *platform.Config) {
					c.Selector = loadbal.NewRandom(int64(ratio*100 + trial))
				},
			})
			if err != nil {
				return nil, err
			}
			prober := w.DirectProber(plat.Config().IngressIPs[0])
			res, err := core.InitValidate(ctx, prober, w.Infra, core.InitValidateOptions{N: bigN})
			if err != nil {
				return nil, err
			}
			coverSum += float64(res.InitArrivals) / float64(n)
			hitsSum += float64(res.ValidateHits)
			cachesSum += float64(res.Caches)
		}
		coverage := coverSum / trials
		hits := hitsSum / trials
		caches := cachesSum / trials
		wantCoverage := 1 - math.Exp(-float64(bigN)/float64(n))
		wantHits := core.InitValidateSuccessRate(n, bigN)

		table.AddRow(fmt.Sprintf("%d", ratio),
			stats.FormatPercent(coverage), stats.FormatPercent(wantCoverage),
			fmt.Sprintf("%.1f", hits), fmt.Sprintf("%.1f", wantHits),
			fmt.Sprintf("%.1f", caches))
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("N/n=%d init coverage matches 1-exp(-N/n)", ratio),
			Paper: wantCoverage, Measured: coverage, Tolerance: 0.08,
		})
		if ratio >= 2 {
			report.Checks = append(report.Checks, Check{
				Name:  fmt.Sprintf("N/n=%d both phases find all caches", ratio),
				Paper: float64(n), Measured: caches, Tolerance: 0.5,
			})
		}
	}
	report.Text = table.String() +
		"\nNote: measured validate hits exceed the paper's N(1-exp(-N/n))^2 estimate;\n" +
		"the squared factor double-counts coverage, and the empirical per-probe hit\n" +
		"rate follows N·(1-exp(-N/n)) once init has run. Both series are shown.\n"
	return report, nil
}

// CarpetBombing reproduces the §V packet-loss mitigation: enumeration
// accuracy at the paper's measured loss rates (typical 1%, China 4%,
// Iran 11%) as the replication factor K grows.
func CarpetBombing(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()

	const n = 6
	const trials = 25
	losses := []struct {
		label string
		loss  float64
	}{
		{"typical (1%)", 0.01},
		{"China (4%)", 0.04},
		{"Iran (11%)", 0.11},
	}
	table := &stats.Table{Header: []string{"Network", "K", "mean measured caches", "exact rate", "recommended K"}}
	report := &Report{ID: "carpet", Title: "§V carpet bombing: enumeration accuracy vs packet loss and replication K"}

	for _, lc := range losses {
		perExchange := 1 - (1-lc.loss)*(1-lc.loss)
		recommended := core.CarpetBombingFactor(perExchange, 0.99)
		for _, k := range []int{1, 2, 3} {
			w, err := simtest.New(simtest.Options{Seed: cfg.Seed + int64(k*1000) + int64(lc.loss*10000)})
			if err != nil {
				return nil, err
			}
			sum, exact := 0.0, 0
			for trial := 0; trial < trials; trial++ {
				plat, err := w.NewPlatform(simtest.PlatformSpec{
					Caches: n, Seed: int64(trial),
					Profile: probeLossProfile(lc.loss),
					Mutate: func(c *platform.Config) {
						c.Selector = loadbal.NewRandom(int64(trial * 7))
					},
				})
				if err != nil {
					return nil, err
				}
				prober := w.DirectProber(plat.Config().IngressIPs[0])
				res, err := core.EnumerateDirect(ctx, prober, w.Infra, core.EnumOptions{
					Queries:    core.RecommendedQueries(n, 0.99),
					Replicates: k,
				})
				if err != nil {
					continue
				}
				sum += float64(res.Caches)
				if res.Caches == n {
					exact++
				}
			}
			mean := sum / trials
			exactRate := float64(exact) / trials
			table.AddRow(lc.label, fmt.Sprintf("%d", k), fmt.Sprintf("%.2f", mean),
				stats.FormatPercent(exactRate), fmt.Sprintf("%d", recommended))
			if k >= recommended {
				report.Checks = append(report.Checks, Check{
					Name:  fmt.Sprintf("%s K=%d recovers n=%d", lc.label, k, n),
					Paper: float64(n), Measured: mean, Tolerance: 0.35,
				})
			}
		}
	}
	report.Text = table.String()
	return report, nil
}

// probeLossProfile returns a platform link profile with the given loss.
func probeLossProfile(loss float64) netsim.LinkProfile {
	return netsim.LinkProfile{OneWay: 2 * time.Millisecond, Loss: loss}
}
