package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"dnscde/internal/core"
	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// Theorem51 validates Theorem 5.1 (E[X] = n·H_n for uniform cache
// selection) two ways: a pure Monte-Carlo coupon-collector simulation and
// an end-to-end measurement against live platforms, counting probes until
// enumeration covers all n caches.
func Theorem51(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	table := &stats.Table{Header: []string{"n", "n·H_n (analytic)", "Monte-Carlo", "End-to-end"}}
	report := &Report{ID: "thm51", Title: "Theorem 5.1: expected probes to cover all n caches (coupon collector)"}

	for _, n := range []int{2, 4, 8, 16, 32} {
		analytic := core.ExpectedProbesToCoverAll(n)

		// Monte-Carlo coupon collector: independent trials on the detpar
		// pool, each with its own derived RNG stream.
		const trials = 1000
		counts, err := detpar.Map(ctx, detpar.Derive(cfg.Seed, 51, uint64(n)), trials, cfg.Workers,
			func(_ int, rng *rand.Rand) (int, error) {
				covered := make([]bool, n)
				remaining, probes := n, 0
				for remaining > 0 {
					idx := rng.Intn(n)
					if !covered[idx] {
						covered[idx] = true
						remaining--
					}
					probes++
				}
				return probes, nil
			})
		if err != nil {
			return nil, err
		}
		mcTotal := 0
		for _, c := range counts {
			mcTotal += c
		}
		mc := float64(mcTotal) / trials

		// End-to-end: probe a live platform with a fresh honey name per
		// trial, counting probes until the nameserver has seen n arrivals.
		// Each trial owns a full world (network, infra, platform), so
		// trials share no RNG, cache or log state and the merged result is
		// identical at any worker count.
		const e2eTrials = 30
		e2eCounts, err := detpar.Map(ctx, detpar.Derive(cfg.Seed, 52, uint64(n)), e2eTrials, cfg.Workers,
			func(trial int, rng *rand.Rand) (int, error) {
				w, err := cfg.trialWorld(rng.Int63())
				if err != nil {
					return 0, err
				}
				plat, err := w.NewPlatform(simtest.PlatformSpec{
					Caches: n, Seed: int64(n),
					Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(rng.Int63()) },
				})
				if err != nil {
					return 0, err
				}
				prober := w.DirectProber(plat.Config().IngressIPs[0])
				session, err := w.Infra.NewFlatSession()
				if err != nil {
					return 0, err
				}
				probes := 0
				for session.ObservedCaches() < n {
					probes++
					if _, err := prober.Probe(ctx, session.Honey, dnswire.TypeA); err != nil {
						continue
					}
					if probes > 200*n {
						return 0, fmt.Errorf("thm51: runaway trial %d for n=%d", trial, n)
					}
				}
				return probes, nil
			})
		if err != nil {
			return nil, err
		}
		e2eTotal := 0
		for _, c := range e2eCounts {
			e2eTotal += c
		}
		e2e := float64(e2eTotal) / e2eTrials

		table.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", analytic),
			fmt.Sprintf("%.2f", mc), fmt.Sprintf("%.2f", e2e))
		report.Checks = append(report.Checks,
			Check{Name: fmt.Sprintf("n=%d Monte-Carlo matches n·H_n", n),
				Paper: analytic, Measured: mc, Tolerance: analytic * 0.08},
			Check{Name: fmt.Sprintf("n=%d end-to-end matches n·H_n", n),
				Paper: analytic, Measured: e2e, Tolerance: analytic * 0.20},
		)
	}
	report.Text = table.String()
	return report, nil
}

// InitValidateSweep reproduces the §V-B init/validate analysis: for
// several N/n ratios it measures the fraction of caches covered during
// init (paper: 1 - exp(-N/n)) and the number of validate probes answered
// from cache, compared with the paper's N·(1-exp(-N/n))² estimate.
func InitValidateSweep(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	const n = 8
	const trials = 40
	table := &stats.Table{Header: []string{
		"N/n", "coverage (meas)", "1-e^-N/n", "validate hits (meas)", "N(1-e^-N/n)^2", "caches found"}}
	report := &Report{ID: "initvalidate", Title: "§V-B init/validate protocol: coverage and success rate vs N/n"}

	type ivTrial struct {
		cover, hits, caches float64
	}
	for _, ratio := range []int{1, 2, 4, 8} {
		bigN := ratio * n
		results, err := detpar.Map(ctx, detpar.Derive(cfg.Seed, 53, uint64(ratio)), trials, cfg.Workers,
			func(trial int, rng *rand.Rand) (ivTrial, error) {
				// A world per trial: platform, caches and query log are
				// trial-private, so trials can run on any worker count
				// without sharing state.
				w, err := cfg.trialWorld(rng.Int63())
				if err != nil {
					return ivTrial{}, err
				}
				plat, err := w.NewPlatform(simtest.PlatformSpec{
					Caches: n, Seed: int64(ratio*1000 + trial),
					Mutate: func(c *platform.Config) {
						c.Selector = loadbal.NewRandom(int64(ratio*100 + trial))
					},
				})
				if err != nil {
					return ivTrial{}, err
				}
				prober := w.DirectProber(plat.Config().IngressIPs[0])
				res, err := core.InitValidate(ctx, prober, w.Infra, core.InitValidateOptions{N: bigN})
				if err != nil {
					return ivTrial{}, err
				}
				return ivTrial{
					cover:  float64(res.InitArrivals) / float64(n),
					hits:   float64(res.ValidateHits),
					caches: float64(res.Caches),
				}, nil
			})
		if err != nil {
			return nil, err
		}
		coverSum, hitsSum, cachesSum := 0.0, 0.0, 0.0
		for _, r := range results {
			coverSum += r.cover
			hitsSum += r.hits
			cachesSum += r.caches
		}
		coverage := coverSum / trials
		hits := hitsSum / trials
		caches := cachesSum / trials
		wantCoverage := 1 - math.Exp(-float64(bigN)/float64(n))
		wantHits := core.InitValidateSuccessRate(n, bigN)

		table.AddRow(fmt.Sprintf("%d", ratio),
			stats.FormatPercent(coverage), stats.FormatPercent(wantCoverage),
			fmt.Sprintf("%.1f", hits), fmt.Sprintf("%.1f", wantHits),
			fmt.Sprintf("%.1f", caches))
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("N/n=%d init coverage matches 1-exp(-N/n)", ratio),
			Paper: wantCoverage, Measured: coverage, Tolerance: 0.08,
		})
		if ratio >= 2 {
			report.Checks = append(report.Checks, Check{
				Name:  fmt.Sprintf("N/n=%d both phases find all caches", ratio),
				Paper: float64(n), Measured: caches, Tolerance: 0.5,
			})
		}
	}
	report.Text = table.String() +
		"\nNote: measured validate hits exceed the paper's N(1-exp(-N/n))^2 estimate;\n" +
		"the squared factor double-counts coverage, and the empirical per-probe hit\n" +
		"rate follows N·(1-exp(-N/n)) once init has run. Both series are shown.\n"
	return report, nil
}

// CarpetBombing reproduces the §V packet-loss mitigation: enumeration
// accuracy at the paper's measured loss rates (typical 1%, China 4%,
// Iran 11%) as the replication factor K grows.
func CarpetBombing(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	const n = 6
	const trials = 25
	losses := []struct {
		label string
		loss  float64
	}{
		{"typical (1%)", 0.01},
		{"China (4%)", 0.04},
		{"Iran (11%)", 0.11},
	}
	table := &stats.Table{Header: []string{"Network", "K", "mean measured caches", "exact rate", "recommended K"}}
	report := &Report{ID: "carpet", Title: "§V carpet bombing: enumeration accuracy vs packet loss and replication K"}

	for _, lc := range losses {
		perExchange := 1 - (1-lc.loss)*(1-lc.loss)
		recommended := core.CarpetBombingFactor(perExchange, 0.99)
		for _, k := range []int{1, 2, 3} {
			type cbTrial struct {
				caches int
				failed bool
			}
			results, err := detpar.Map(ctx,
				detpar.Derive(cfg.Seed, 54, uint64(k), uint64(lc.loss*10000)), trials, cfg.Workers,
				func(trial int, rng *rand.Rand) (cbTrial, error) {
					w, err := cfg.trialWorld(rng.Int63())
					if err != nil {
						return cbTrial{}, err
					}
					plat, err := w.NewPlatform(simtest.PlatformSpec{
						Caches: n, Seed: int64(trial),
						Profile: probeLossProfile(lc.loss),
						Mutate: func(c *platform.Config) {
							c.Selector = loadbal.NewRandom(int64(trial * 7))
						},
					})
					if err != nil {
						return cbTrial{}, err
					}
					prober := w.DirectProber(plat.Config().IngressIPs[0])
					res, err := core.EnumerateDirect(ctx, prober, w.Infra, core.EnumOptions{
						Queries:    core.RecommendedQueries(n, 0.99),
						Replicates: k,
					})
					if err != nil {
						// A fully lost enumeration counts as an inexact
						// trial, exactly as the sequential sweep did.
						return cbTrial{failed: true}, nil
					}
					return cbTrial{caches: res.Caches}, nil
				})
			if err != nil {
				return nil, err
			}
			sum, exact := 0.0, 0
			for _, r := range results {
				if r.failed {
					continue
				}
				sum += float64(r.caches)
				if r.caches == n {
					exact++
				}
			}
			mean := sum / trials
			exactRate := float64(exact) / trials
			table.AddRow(lc.label, fmt.Sprintf("%d", k), fmt.Sprintf("%.2f", mean),
				stats.FormatPercent(exactRate), fmt.Sprintf("%d", recommended))
			if k >= recommended {
				report.Checks = append(report.Checks, Check{
					Name:  fmt.Sprintf("%s K=%d recovers n=%d", lc.label, k, n),
					Paper: float64(n), Measured: mean, Tolerance: 0.35,
				})
			}
		}
	}
	report.Text = table.String()
	return report, nil
}

// probeLossProfile returns a platform link profile with the given loss.
func probeLossProfile(loss float64) netsim.LinkProfile {
	return netsim.LinkProfile{OneWay: 2 * time.Millisecond, Loss: loss}
}
