package experiments

import (
	"context"
	"fmt"
	"time"

	"dnscde/internal/core"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// AblationSelection quantifies how the platform's cache-selection
// strategy (§IV-A categories) changes the probe cost and accuracy of
// enumeration: round robin needs q = n; uniform random needs ≈ n·H_n;
// key-dependent selection defeats the identical-query technique entirely
// (the distinct-name techniques still work).
func AblationSelection(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	const n = 6

	table := &stats.Table{Header: []string{
		"Selector", "category", "direct ω", "hierarchy ω", "probes to cover (direct)"}}
	report := &Report{ID: "ablation-selection", Title: "Ablation: cache-selection strategy vs enumeration technique"}

	selectors := []struct {
		label string
		make  func() loadbal.Selector
	}{
		{"round-robin", func() loadbal.Selector { return loadbal.NewRoundRobin() }},
		{"random", func() loadbal.Selector { return loadbal.NewRandom(5) }},
		{"hash-qname", func() loadbal.Selector { return loadbal.HashQName{} }},
		{"hash-source-ip", func() loadbal.Selector { return loadbal.HashSourceIP{} }},
	}
	for _, sel := range selectors {
		w, err := cfg.trialWorld(cfg.Seed)
		if err != nil {
			return nil, err
		}
		newPlat := func(seed int64) (*platform.Platform, error) {
			return w.NewPlatform(simtest.PlatformSpec{
				Caches: n, Seed: seed,
				Mutate: func(c *platform.Config) { c.Selector = sel.make() },
			})
		}

		plat, err := newPlat(1)
		if err != nil {
			return nil, err
		}
		direct, err := core.EnumerateDirect(ctx, w.DirectProber(plat.Config().IngressIPs[0]), w.Infra,
			core.EnumOptions{Queries: core.RecommendedQueries(n, 0.999)})
		if err != nil {
			return nil, err
		}

		plat2, err := newPlat(2)
		if err != nil {
			return nil, err
		}
		hier, err := core.EnumerateHierarchy(ctx, w.DirectProber(plat2.Config().IngressIPs[0]), w.Infra,
			core.EnumOptions{Queries: core.RecommendedQueries(n, 0.999)})
		if err != nil {
			return nil, err
		}

		// Probes until full coverage under the identical-query technique
		// (only meaningful when it can cover at all).
		cover := "-"
		category := sel.make().Category()
		if category != loadbal.KeyDependent {
			plat3, err := newPlat(3)
			if err != nil {
				return nil, err
			}
			prober := w.DirectProber(plat3.Config().IngressIPs[0])
			session, err := w.Infra.NewFlatSession()
			if err != nil {
				return nil, err
			}
			probes := 0
			for session.ObservedCaches() < n && probes < 500 {
				probes++
				_, _ = prober.Probe(ctx, session.Honey, dnswire.TypeA)
			}
			cover = fmt.Sprintf("%d", probes)
		}

		table.AddRow(sel.label, category.String(),
			fmt.Sprintf("%d", direct.Caches), fmt.Sprintf("%d", hier.Caches), cover)

		switch category {
		case loadbal.KeyDependent:
			report.Checks = append(report.Checks,
				Check{Name: sel.label + ": identical queries see one cache", Paper: 1, Measured: float64(direct.Caches), Tolerance: 0},
			)
			// hash-source-ip also pins the hierarchy technique when all
			// probes share a source; hash-qname spreads by name.
			if sel.label == "hash-qname" {
				report.Checks = append(report.Checks,
					Check{Name: sel.label + ": hierarchy technique still covers", Paper: float64(n), Measured: float64(hier.Caches), Tolerance: 0})
			}
		default:
			report.Checks = append(report.Checks,
				Check{Name: sel.label + ": direct technique covers all caches", Paper: float64(n), Measured: float64(direct.Caches), Tolerance: 0},
				Check{Name: sel.label + ": hierarchy technique covers all caches", Paper: float64(n), Measured: float64(hier.Caches), Tolerance: 0},
			)
		}
	}
	report.Text = table.String() +
		"\nRound robin covers n caches in exactly n probes (§V-B); random needs ≈ n·H_n;\n" +
		"key-dependent selection pins identical queries to one cache, so only the\n" +
		"distinct-name techniques (and for hash-source-ip, multi-vantage probing) count.\n"
	return report, nil
}

// AblationBypass compares the two §IV-B2 local-cache bypasses (CNAME
// chain vs names hierarchy) and the effect of BIND-style trusted answer
// chains on the CNAME technique.
func AblationBypass(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	const n = 4

	table := &stats.Table{Header: []string{"Technique", "resolver", "measured ω", "parent-zone queries"}}
	report := &Report{ID: "ablation-bypass", Title: "Ablation: CNAME-chain vs names-hierarchy bypass"}

	cases := []struct {
		label string
		trust bool
		run   func(w *simtest.World, p core.Prober) (core.EnumResult, error)
	}{
		{"cname-chain", false, func(w *simtest.World, p core.Prober) (core.EnumResult, error) {
			return core.EnumerateChain(ctx, p, w.Infra, core.EnumOptions{Queries: core.RecommendedQueries(n, 0.999)})
		}},
		{"cname-chain", true, func(w *simtest.World, p core.Prober) (core.EnumResult, error) {
			return core.EnumerateChain(ctx, p, w.Infra, core.EnumOptions{Queries: core.RecommendedQueries(n, 0.999)})
		}},
		{"names-hierarchy", false, func(w *simtest.World, p core.Prober) (core.EnumResult, error) {
			return core.EnumerateHierarchy(ctx, p, w.Infra, core.EnumOptions{Queries: core.RecommendedQueries(n, 0.999)})
		}},
	}
	for _, tc := range cases {
		w, err := cfg.trialWorld(cfg.Seed)
		if err != nil {
			return nil, err
		}
		plat, err := w.NewPlatform(simtest.PlatformSpec{
			Caches: n, Seed: 4,
			Mutate: func(c *platform.Config) {
				c.Selector = loadbal.NewRandom(9)
				c.TrustAnswerChains = tc.trust
			},
		})
		if err != nil {
			return nil, err
		}
		prober := core.NewIndirectProber(w.NewStub(plat.Config().IngressIPs[0]))
		before := w.Infra.Parent.Log().Len()
		res, err := tc.run(w, prober)
		if err != nil {
			return nil, err
		}
		parentQueries := w.Infra.Parent.Log().Len() - before

		resolver := "hardened (re-query)"
		if tc.trust {
			resolver = "BIND-style (trusts chains)"
		}
		table.AddRow(tc.label, resolver, fmt.Sprintf("%d", res.Caches), fmt.Sprintf("%d", parentQueries))

		switch {
		case tc.label == "cname-chain" && !tc.trust:
			report.Checks = append(report.Checks, Check{
				Name: "cname-chain vs hardened resolver recovers n", Paper: float64(n), Measured: float64(res.Caches), Tolerance: 0})
		case tc.label == "cname-chain" && tc.trust:
			report.Checks = append(report.Checks, Check{
				Name: "cname-chain vs trusting resolver undercounts", Paper: 0, Measured: float64(res.Caches), Tolerance: 0})
		default:
			report.Checks = append(report.Checks, Check{
				Name: "names-hierarchy recovers n regardless", Paper: float64(n), Measured: float64(res.Caches), Tolerance: 0})
		}
	}
	report.Text = table.String() +
		"\nThe names hierarchy is robust to resolvers that accept server-appended CNAME\n" +
		"targets, because its signal is the delegation fetch, not the alias target.\n"
	return report, nil
}

// AblationThreshold compares the timing-channel thresholding functions
// (calibrated midpoint vs unsupervised 1-D 2-means) as network jitter
// grows toward the cached/uncached separation.
func AblationThreshold(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	const n = 4

	table := &stats.Table{Header: []string{"Jitter", "midpoint ω", "kmeans ω", "truth"}}
	report := &Report{ID: "ablation-threshold", Title: "Ablation: timing-channel threshold under jitter"}

	for _, jitter := range []time.Duration{0, time.Millisecond, 4 * time.Millisecond} {
		w, err := cfg.trialWorld(cfg.Seed + int64(jitter))
		if err != nil {
			return nil, err
		}
		newProber := func(seed int64) (core.Prober, error) {
			plat, err := w.NewPlatform(simtest.PlatformSpec{
				Caches: n, Seed: seed,
				Profile: netsim.LinkProfile{OneWay: 2 * time.Millisecond, Jitter: jitter},
				Mutate:  func(c *platform.Config) { c.Selector = loadbal.NewRandom(seed) },
			})
			if err != nil {
				return nil, err
			}
			return w.DirectProber(plat.Config().IngressIPs[0]), nil
		}

		p1, err := newProber(1)
		if err != nil {
			return nil, err
		}
		mid, err := core.EnumerateTimingDirect(ctx, p1, w.Infra, core.TimingOptions{
			CountProbes: core.RecommendedQueries(n, 0.999), Threshold: core.MidpointThreshold})
		if err != nil {
			return nil, err
		}
		p2, err := newProber(2)
		if err != nil {
			return nil, err
		}
		km, err := core.EnumerateTimingDirect(ctx, p2, w.Infra, core.TimingOptions{
			CountProbes: core.RecommendedQueries(n, 0.999), Threshold: core.KMeansThreshold})
		if err != nil {
			return nil, err
		}
		table.AddRow(jitter.String(), fmt.Sprintf("%d", mid.Caches), fmt.Sprintf("%d", km.Caches), fmt.Sprintf("%d", n))
		report.Checks = append(report.Checks,
			Check{Name: fmt.Sprintf("midpoint at jitter=%v", jitter), Paper: float64(n), Measured: float64(mid.Caches), Tolerance: 1},
			Check{Name: fmt.Sprintf("kmeans at jitter=%v", jitter), Paper: float64(n), Measured: float64(km.Caches), Tolerance: 1},
		)
	}
	report.Text = table.String() +
		"\nBoth thresholds hold while jitter stays below the upstream round trip;\n" +
		"the calibrated midpoint degrades more gracefully as they approach.\n"
	return report, nil
}
