package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"dnscde/internal/core"
	"dnscde/internal/detpar"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// Classify evaluates the cache-selection classifier (the paper's §IV-A
// future work, built from CDE primitives): platforms with known selection
// strategies are classified from the outside and a confusion matrix is
// reported.
func Classify(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	const perKind = 20
	const vantages = 16

	kinds := []struct {
		label string
		want  core.SelectionClass
		make  func(seed int64) loadbal.Selector
	}{
		{"round-robin", core.ClassTrafficDependent, func(int64) loadbal.Selector { return loadbal.NewRoundRobin() }},
		{"random", core.ClassUnpredictable, func(seed int64) loadbal.Selector { return loadbal.NewRandom(seed) }},
		{"hash-qname", core.ClassKeyDependent, func(int64) loadbal.Selector { return loadbal.HashQName{} }},
		{"hash-source-ip", core.ClassKeyDependent, func(int64) loadbal.Selector { return loadbal.HashSourceIP{} }},
	}

	table := &stats.Table{Header: []string{"True selector", "classified correctly", "verdicts"}}
	report := &Report{ID: "classify", Title: "Future work (§IV-A): classifying cache-selection strategies with CDE"}

	for ki, kind := range kinds {
		// One world per platform under test: vantage addresses, query log
		// and selector state are platform-private, so the per-kind sweep
		// parallelises without any cross-platform coupling.
		classes, err := detpar.Map(ctx, detpar.Derive(cfg.Seed, 56, uint64(ki)), perKind, cfg.Workers,
			func(i int, rng *rand.Rand) (core.SelectionClass, error) {
				seed := int64(ki*1000 + i)
				caches := 2 + (i % 5) // 2..6 caches
				w, err := cfg.trialWorld(rng.Int63())
				if err != nil {
					return "", err
				}
				plat, err := w.NewPlatform(simtest.PlatformSpec{
					Name: fmt.Sprintf("classify-%s-%d", kind.label, i), Caches: caches, Seed: seed,
					Mutate: func(c *platform.Config) { c.Selector = kind.make(seed) },
				})
				if err != nil {
					return "", err
				}
				ingress := plat.Config().IngressIPs[0]
				prober := w.DirectProber(ingress)
				extras := make([]core.Prober, 0, vantages)
				for v := 0; v < vantages; v++ {
					extras = append(extras, w.DirectProber(ingress))
				}
				res, err := core.ClassifySelection(ctx, prober, w.Infra, core.ClassifyOptions{ExtraVantages: extras})
				if err != nil {
					return "", err
				}
				return res.Class, nil
			})
		if err != nil {
			return nil, err
		}
		correct := 0
		verdicts := map[core.SelectionClass]int{}
		for _, class := range classes {
			verdicts[class]++
			if class == kind.want {
				correct++
			}
		}
		table.AddRow(kind.label, fmt.Sprintf("%d/%d", correct, perKind), fmt.Sprintf("%v", verdicts))
		minAccuracy := 0.9
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("%s classified as %s", kind.label, kind.want),
			Paper: 1.0, Measured: float64(correct) / perKind, Tolerance: 1 - minAccuracy,
		})
	}
	report.Text = table.String() +
		"\nEach platform is probed with one primary and 16 extra vantage points; the\n" +
		"classifier combines distinct-name vs identical-name counts with the\n" +
		"arrival-order test (round robin fills the first n probe slots exactly).\n"
	return report, nil
}
