package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"dnscde/internal/core"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// softwareProfile describes a resolver-software behavioural archetype in
// the spirit of the §VI fingerprinting literature.
type softwareProfile struct {
	label core.Software
	share float64 // population share, loosely following passive surveys
	apply func(*platform.Config)
}

var _softwareProfiles = []softwareProfile{
	{core.SoftwareChainTrusting, 0.55, func(c *platform.Config) {
		c.TrustAnswerChains = true
		c.MaxCNAMEChase = 16
	}},
	{core.SoftwareHardened, 0.30, func(c *platform.Config) {
		c.MaxCNAMEChase = 11
	}},
	{core.SoftwareAAAACoupled, 0.15, func(c *platform.Config) {
		c.QueryAAAA = true
		c.MaxCNAMEChase = 8
	}},
}

// FingerprintSurvey measures resolver-software shares across a population
// (§II-C: knowing "which software the caches are running" matters for
// patch distribution; §VI: prior studies fingerprint only egress IPs).
// Every platform is fingerprinted with three probes and classified; the
// measured shares are compared with the deployed ground truth.
func FingerprintSurvey(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w, err := cfg.world()
	if err != nil {
		return nil, err
	}
	size := cfg.OpenResolvers
	if size < 150 {
		size = 150
	}

	truth := map[core.Software]int{}
	measured := map[core.Software]int{}
	correct := 0
	limitSamples := map[core.Software][]int{}
	for i := 0; i < size; i++ {
		// Sample a software profile per platform.
		x := rng.Float64()
		var profile softwareProfile
		acc := 0.0
		for _, p := range _softwareProfiles {
			acc += p.share
			if x < acc {
				profile = p
				break
			}
		}
		if profile.label == "" {
			profile = _softwareProfiles[len(_softwareProfiles)-1]
		}
		truth[profile.label]++

		plat, err := w.NewPlatform(simtest.PlatformSpec{
			Name: fmt.Sprintf("fp-%d", i), Caches: 1 + rng.Intn(4), Seed: int64(i),
			Mutate: func(c *platform.Config) {
				c.Selector = loadbal.NewRandom(int64(i))
				profile.apply(c)
			},
		})
		if err != nil {
			return nil, err
		}
		fp, err := core.FingerprintResolver(ctx, w.DirectProber(plat.Config().IngressIPs[0]), w.Infra, core.FingerprintOptions{})
		if err != nil {
			return nil, err
		}
		verdict := core.ClassifySoftware(fp)
		measured[verdict]++
		if verdict == profile.label {
			correct++
		}
		if fp.ChaseLimited {
			limitSamples[verdict] = append(limitSamples[verdict], fp.ObservedChaseDepth)
		}
	}

	table := &stats.Table{Header: []string{"Software class", "Ground truth", "Measured"}}
	report := &Report{ID: "fingerprint", Title: "§II-C / §VI: resolver-software fingerprinting survey"}
	for _, p := range _softwareProfiles {
		truthShare := float64(truth[p.label]) / float64(size)
		measShare := float64(measured[p.label]) / float64(size)
		table.AddRow(string(p.label), stats.FormatPercent(truthShare), stats.FormatPercent(measShare))
		report.Checks = append(report.Checks, Check{
			Name:  fmt.Sprintf("%s share recovered", p.label),
			Paper: truthShare, Measured: measShare, Tolerance: 0.02,
		})
	}
	accuracy := float64(correct) / float64(size)
	report.Checks = append(report.Checks, Check{
		Name: "per-platform classification accuracy", Paper: 1.0, Measured: accuracy, Tolerance: 0.03,
	})
	report.Text = table.String() + fmt.Sprintf(
		"\nPer-platform accuracy: %s over %d platforms (3 probes each: AAAA coupling,\nshallow-chain trust, deep-chain chase limit).\n",
		stats.FormatPercent(accuracy), size)
	return report, nil
}
