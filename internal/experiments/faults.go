package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dnscde/internal/core"
	"dnscde/internal/detpar"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

// faultProfiles is the sweep: each row injects one deterministic fault
// profile into the platform's link and measures both enumeration arms
// against it. Specs use the ParseFaultProfile syntax so the table
// doubles as -faults documentation.
var faultProfiles = []struct {
	label string
	spec  string
}{
	{"clean", ""},
	{"burst 5% (mean 4)", "burst=0.05:4"},
	{"Iran burst 11%", "burst=0.11:4"},
	{"Iran + SERVFAIL 2%", "burst=0.11:4,servfail=0.02"},
	{"outage (probes 4-11)", "outage=4+8"},
}

// Faults sweeps deterministic fault profiles over a known platform and
// compares raw enumeration (K=1, §IV-B1) against the §V-B
// loss-compensated loop, whose online estimator inflates the
// carpet-bombing replication factor as losses are observed. Under burst
// loss the raw arm's ω undercounts the true cache count; the compensated
// arm spends extra replicates and recovers it.
func Faults(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	const n = 8
	const trials = 40
	q := core.RecommendedQueries(n, 0.90)

	table := &stats.Table{Header: []string{
		"Fault profile", "raw ω", "comp ω", "est loss", "mean K", "raw probes", "comp probes"}}
	report := &Report{ID: "faults", Title: "§V-B fault injection: raw vs loss-compensated enumeration"}

	type ftTrial struct {
		rawCaches, compCaches   float64
		rawProbes, compProbes   float64
		lossEstimate, replicate float64
	}
	for pi, pc := range faultProfiles {
		fp, err := netsim.ParseFaultProfile(pc.spec)
		if err != nil {
			return nil, fmt.Errorf("faults: profile %q: %w", pc.label, err)
		}
		results, err := detpar.Map(ctx, detpar.Derive(cfg.Seed, 55, uint64(pi)), trials, cfg.Workers,
			func(trial int, rng *rand.Rand) (ftTrial, error) {
				// A world per trial, a prober per arm: each arm's probe flow
				// owns its RNG stream, so burst chains and outage windows hit
				// both arms independently and the merged report is identical
				// at any worker count.
				w, err := cfg.trialWorld(rng.Int63())
				if err != nil {
					return ftTrial{}, err
				}
				plat, err := w.NewPlatform(simtest.PlatformSpec{
					Caches: n, Seed: int64(trial),
					Profile: netsim.LinkProfile{OneWay: 2 * time.Millisecond, Faults: fp},
					Mutate: func(c *platform.Config) {
						c.Selector = loadbal.NewRandom(int64(trial*7 + 1))
					},
				})
				if err != nil {
					return ftTrial{}, err
				}
				ingress := plat.Config().IngressIPs[0]

				// Both arms run under RunSequenced: on a sharded world
				// (cfg.Shards >= 1) the probes ride the event-loop lanes, on
				// a legacy world the closure runs inline — byte-identical
				// results either way (DESIGN.md §12).
				var raw, comp core.EnumResult
				est := &core.LossEstimator{}
				err = w.RunSequenced(ctx, func(ctx context.Context) error {
					raw, err = core.EnumerateDirect(ctx, w.DirectProber(ingress), w.Infra,
						core.EnumOptions{Queries: q})
					if err != nil && !errors.Is(err, core.ErrAllProbesFailed) {
						return err
					}
					comp, err = core.EnumerateDirectCompensated(ctx, w.DirectProber(ingress), w.Infra,
						core.EnumOptions{Queries: q}, core.CompensateOptions{Estimator: est})
					if err != nil && !errors.Is(err, core.ErrAllProbesFailed) {
						return err
					}
					return nil
				})
				if err != nil {
					return ftTrial{}, err
				}
				return ftTrial{
					rawCaches:    float64(raw.Caches),
					compCaches:   float64(comp.Caches),
					rawProbes:    float64(raw.ProbesSent),
					compProbes:   float64(comp.ProbesSent),
					lossEstimate: est.Rate(),
					replicate:    float64(est.Replicates(0.99, 8)),
				}, nil
			})
		if err != nil {
			return nil, err
		}
		var sum ftTrial
		for _, r := range results {
			sum.rawCaches += r.rawCaches
			sum.compCaches += r.compCaches
			sum.rawProbes += r.rawProbes
			sum.compProbes += r.compProbes
			sum.lossEstimate += r.lossEstimate
			sum.replicate += r.replicate
		}
		rawMean := sum.rawCaches / trials
		compMean := sum.compCaches / trials
		lossMean := sum.lossEstimate / trials
		kMean := sum.replicate / trials
		table.AddRow(pc.label,
			fmt.Sprintf("%.2f", rawMean), fmt.Sprintf("%.2f", compMean),
			stats.FormatPercent(lossMean), fmt.Sprintf("%.2f", kMean),
			fmt.Sprintf("%.1f", sum.rawProbes/trials), fmt.Sprintf("%.1f", sum.compProbes/trials))

		switch {
		case pc.spec == "":
			// A clean path must cost exactly nothing: the estimator stays at
			// 0, K at 1, and the compensated arm's probe count equals the raw
			// arm's budget.
			report.Checks = append(report.Checks,
				Check{Name: "clean: compensated probes equal raw budget",
					Paper: float64(q), Measured: sum.compProbes / trials, Tolerance: 0.01},
				Check{Name: "clean: estimated loss is zero",
					Paper: 0, Measured: lossMean, Tolerance: 0.001},
				Check{Name: "clean: compensated ω recovers n",
					Paper: n, Measured: compMean, Tolerance: 0.35},
			)
		default:
			// Every faulty profile: the raw arm undercounts (its deficit to n
			// is visibly positive) and the compensated arm recovers the true
			// count within the §V-B tolerance while spending extra probes.
			report.Checks = append(report.Checks,
				Check{Name: pc.label + ": raw ω undercounts n (deficit)",
					Paper: 0.25, Measured: n - rawMean, Tolerance: 0.24},
				Check{Name: pc.label + ": compensated ω recovers n",
					Paper: n, Measured: compMean, Tolerance: 0.40},
				Check{Name: pc.label + ": compensation spends extra probes",
					Paper: 2.3, Measured: (sum.compProbes / trials) / float64(q), Tolerance: 1.25},
			)
		}
	}
	report.Text = table.String() + fmt.Sprintf(
		"\nn=%d caches, q=%d probes/arm (90%% union-bound budget), %d trials/profile.\n"+
			"raw arm: EnumerateDirect with K=1. comp arm: online loss estimate feeding\n"+
			"the carpet-bombing factor K (§V-B), capped at 8.\n", n, q, trials)
	return report, nil
}
