// Package experiments regenerates every table and figure of the paper's
// evaluation (§III and §V) against synthetic populations, and reports
// paper-published, ground-truth and CDE-measured values side by side.
//
// Each experiment is a function from Config to *Report; the Registry maps
// the identifiers used by cmd/cdebench and the root-level benchmarks to
// drivers. See DESIGN.md §4 for the experiment index.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/simtest"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Seed drives all random generation; 0 defaults to 2017.
	Seed int64
	// OpenResolvers, Enterprises, ISPs are the population sizes measured
	// by the per-dataset experiments. Zero defaults to 120 each —
	// large enough for stable shares, small enough for quick runs. The
	// paper's own datasets were 1K/1K/~240.
	OpenResolvers, Enterprises, ISPs int
	// ScaleClients and ScaleCaches size the `scale` DES sweep: the number
	// of concurrent stub clients multiplexed on one event scheduler and
	// the number of simulated caches they query. Zero defaults to the
	// headline 1M-client / 10K-cache configuration; CI runs a smaller
	// population via cdebench's -clients/-caches flags.
	ScaleClients, ScaleCaches int
	// Metrics receives the run's probe-cost accounting. Run installs a
	// fresh registry when nil, so every report carries a Cost summary.
	Metrics *metrics.Registry
	// Workers bounds the parallelism of the Monte-Carlo trial loops and
	// the dataset measurement pool; <= 0 uses the hardware (GOMAXPROCS).
	// Reports are byte-identical at any worker count — parallel fan-out
	// goes through detpar, whose per-index RNG derivation and
	// index-ordered merge keep results independent of scheduling.
	Workers int
	// Faults, when non-nil, injects the deterministic fault profile
	// (burst loss, SERVFAIL/REFUSED, truncation, duplication, outages)
	// into every platform link an experiment builds — cdebench's -faults
	// flag. Nil leaves all links clean.
	Faults *netsim.FaultProfile
	// Shards, when >= 1, runs every world an experiment builds on a
	// sharded discrete-event scheduler with that many event-loop lanes
	// (simtest.Options.Shards); 0 keeps the legacy single-scheduler path.
	// Like Workers, it tunes execution, not results: reports are
	// byte-identical at any shard count (DESIGN.md §12).
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2017
	}
	if c.OpenResolvers == 0 {
		c.OpenResolvers = 120
	}
	if c.Enterprises == 0 {
		c.Enterprises = 120
	}
	if c.ISPs == 0 {
		c.ISPs = 120
	}
	return c
}

// rng returns the experiment's deterministic random source.
func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// world builds a fresh simulated Internet.
func (c Config) world() (*simtest.World, error) {
	return simtest.New(simtest.Options{Seed: c.Seed + 1, Metrics: c.Metrics, PlatformFaults: c.Faults, Shards: c.Shards})
}

// trialWorld builds a per-trial world with the given seed, carrying the
// run's metrics registry, injected fault profile and shard count. Trial
// fan-outs use it so -faults and -shards reach every world an experiment
// builds.
func (c Config) trialWorld(seed int64) (*simtest.World, error) {
	return simtest.New(simtest.Options{Seed: seed, Metrics: c.Metrics, PlatformFaults: c.Faults, Shards: c.Shards})
}

// Check is one shape assertion: a value the paper reports versus the
// value this reproduction measured.
type Check struct {
	Name string
	// Paper is the published value, Measured ours; both in the same unit
	// (fractions for shares, counts for counts).
	Paper, Measured float64
	// Tolerance is the allowed absolute deviation.
	Tolerance float64
}

// Pass reports whether the measured value is within tolerance.
func (c Check) Pass() bool {
	d := c.Measured - c.Paper
	if d < 0 {
		d = -d
	}
	return d <= c.Tolerance
}

// Cost summarises what an experiment run spent, read from the
// internal/metrics registry rather than driver bookkeeping.
type Cost struct {
	// Probes is core.probes.sent: probe queries issued by enumeration and
	// measurement drivers; ProbeErrors is the subset lost to timeouts.
	Probes      int64 `json:"probes"`
	ProbeErrors int64 `json:"probe_errors"`
	// Packets is netsim.packets.sent + netsim.packets.recvd (every
	// simulated datagram, both directions); PacketsLost is
	// netsim.packets.lost.
	Packets     int64 `json:"packets"`
	PacketsLost int64 `json:"packets_lost"`
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	// Text is the rendered table/figure, ready to print.
	Text string
	// Checks are the shape assertions.
	Checks []Check
	// Cost is the run's accounting delta; populated by Run.
	Cost Cost
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass() {
			return false
		}
	}
	return true
}

// Render returns the full report including the check summary.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n\n", r.ID, r.Title)
	sb.WriteString(r.Text)
	if len(r.Checks) > 0 {
		sb.WriteString("\nShape checks (paper vs measured):\n")
		for _, c := range r.Checks {
			status := "PASS"
			if !c.Pass() {
				status = "FAIL"
			}
			fmt.Fprintf(&sb, "  [%s] %-48s paper=%.3f measured=%.3f (±%.3f)\n",
				status, c.Name, c.Paper, c.Measured, c.Tolerance)
		}
	}
	if r.Cost != (Cost{}) {
		fmt.Fprintf(&sb, "\nQueries spent: %d probes (%d lost), %d packets (%d lost)\n",
			r.Cost.Probes, r.Cost.ProbeErrors, r.Cost.Packets, r.Cost.PacketsLost)
	}
	return sb.String()
}

// Driver runs one experiment. The context aborts long sweeps early (a
// cancelled ctx stops trial fan-outs between trials and measurement pools
// between targets); drivers pass it down to every probe exchange.
type Driver func(context.Context, Config) (*Report, error)

// Registry maps experiment identifiers to drivers. Identifiers follow
// DESIGN.md §4.
var Registry = map[string]Driver{
	"table1":                TableI,
	"fig2":                  Figure2,
	"fig3":                  Figure3,
	"fig4":                  Figure4,
	"fig5":                  Figure5,
	"fig6":                  Figure6,
	"fig7":                  Figure7,
	"fig8":                  Figure8,
	"thm51":                 Theorem51,
	"initvalidate":          InitValidateSweep,
	"carpet":                CarpetBombing,
	"timing":                TimingChannel,
	"ablation-selection":    AblationSelection,
	"ablation-bypass":       AblationBypass,
	"ablation-threshold":    AblationThreshold,
	"ablation-forwarder":    AblationForwarder,
	"poisoning":             Poisoning,
	"resilience":            Resilience,
	"edns":                  EDNSSurvey,
	"ttlconsistency":        TTLConsistency,
	"classify":              Classify,
	"fingerprint":           FingerprintSurvey,
	"ablation-crosstraffic": AblationCrossTraffic,
	"selectionshare":        SelectionShare,
	"cost":                  CostAccounting,
	"faults":                Faults,
	"scale":                 Scale,
}

// Descriptions maps experiment ids to one-line summaries for -list
// output and docs.
var Descriptions = map[string]string{
	"table1":                "Table I: SMTP-triggered query-type mix",
	"fig2":                  "Fig. 2: operator distribution per dataset",
	"fig3":                  "Fig. 3: CDF of egress IPs per platform",
	"fig4":                  "Fig. 4: CDF of caches per platform",
	"fig5":                  "Fig. 5: IPs vs caches, open resolvers",
	"fig6":                  "Fig. 6: cache-to-IP ratio categories",
	"fig7":                  "Fig. 7: IPs vs caches, SMTP population",
	"fig8":                  "Fig. 8: IPs vs caches, ad-network population",
	"thm51":                 "Theorem 5.1: coupon-collector bound",
	"initvalidate":          "§V-B: init/validate coverage and success rate",
	"carpet":                "§V: carpet bombing vs packet loss",
	"timing":                "§IV-B3: timing side channel",
	"ablation-selection":    "ablation: selection strategy vs technique",
	"ablation-bypass":       "ablation: CNAME-chain vs names-hierarchy",
	"ablation-threshold":    "ablation: timing threshold under jitter",
	"ablation-forwarder":    "ablation: measurement through forwarders (§VI)",
	"ablation-crosstraffic": "ablation: cross traffic (§V-B caveat)",
	"poisoning":             "§II-A: poisoning difficulty vs cache count",
	"resilience":            "§II-B: failed-cache detection",
	"edns":                  "§II-C: EDNS0 adoption survey",
	"ttlconsistency":        "§II-C: TTL-consistency disambiguation",
	"classify":              "future work: selection-strategy classifier",
	"fingerprint":           "§II-C/§VI: resolver-software survey",
	"selectionshare":        "§IV-A: unpredictable-selection share",
	"cost":                  "Thm 5.1 cost: measured enumeration queries vs n·H_n",
	"faults":                "§V-B fault sweep: raw vs loss-compensated enumeration",
	"scale":                 "DES scale sweep: 1M stub clients on one event loop",
}

// IDs returns the registry keys in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given identifier under a
// background context; see RunContext.
func Run(id string, cfg Config) (*Report, error) {
	return RunContext(context.Background(), id, cfg)
}

// RunContext executes the experiment with the given identifier. It
// guarantees a cost-accounting registry is attached (installing a fresh
// one when cfg.Metrics is nil) and stamps the run's accounting delta into
// Report.Cost. Cancelling ctx aborts the run between trials.
func RunContext(ctx context.Context, id string, cfg Config) (*Report, error) {
	driver, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	before := cfg.Metrics.Snapshot()
	report, err := driver(ctx, cfg)
	if err != nil {
		return report, err
	}
	diff := cfg.Metrics.Snapshot().Diff(before)
	report.Cost = Cost{
		Probes:      diff.Counter("core.probes.sent"),
		ProbeErrors: diff.Counter("core.probes.errors"),
		Packets:     diff.Total("netsim.packets.sent") + diff.Total("netsim.packets.recvd"),
		PacketsLost: diff.Total("netsim.packets.lost"),
	}
	return report, nil
}
