package experiments

import (
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/population"
	"dnscde/internal/simtest"
)

// deployPlatform realises a population spec as a live platform on the
// world's network, with the spec's link characteristics (latency, jitter
// and the per-country packet loss the paper reports in §V).
func deployPlatform(w *simtest.World, spec population.NetworkSpec, seed int64) (*platform.Platform, error) {
	return w.NewPlatform(simtest.PlatformSpec{
		Name:    spec.Name,
		Caches:  spec.Caches,
		Ingress: spec.Ingress,
		Egress:  spec.Egress,
		Seed:    seed,
		Profile: netsim.LinkProfile{OneWay: spec.Latency, Jitter: spec.Jitter, Loss: spec.Loss},
		Mutate: func(c *platform.Config) {
			c.Selector = spec.MakeSelector(seed)
			c.CachePolicy = spec.CachePolicy()
			c.EDNS = spec.EDNS
		},
	})
}
