package experiments

import (
	"context"
	"fmt"

	"dnscde/internal/population"
	"dnscde/internal/stats"
)

// datasetMeasurements runs the full measurement pipeline for all three
// populations and returns (per kind) the measurements.
func datasetMeasurements(ctx context.Context, cfg Config, measureEgress bool) (map[population.Kind][]measurement, error) {
	rng := cfg.rng()
	out := make(map[population.Kind][]measurement, 3)
	for _, d := range []struct {
		kind  population.Kind
		count int
	}{
		{population.OpenResolvers, cfg.OpenResolvers},
		{population.Enterprises, cfg.Enterprises},
		{population.ISPs, cfg.ISPs},
	} {
		// A fresh world per dataset keeps address spaces and logs small.
		w, err := cfg.world()
		if err != nil {
			return nil, err
		}
		dataset := population.Generate(d.kind, d.count, rng)
		ms, err := measureDataset(ctx, cfg, w, dataset, measureEgress)
		if err != nil {
			return nil, err
		}
		out[d.kind] = successful(ms)
	}
	return out, nil
}

// Figure3 reproduces Fig. 3: the CDF of the number of egress IP addresses
// per resolution platform, for the three populations, as *measured* by
// CDE egress discovery.
func Figure3(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ms, err := datasetMeasurements(ctx, cfg, true)
	if err != nil {
		return nil, err
	}

	cdfs := map[population.Kind]*stats.CDF{}
	truthCDFs := map[population.Kind]*stats.CDF{}
	for kind, list := range ms {
		var measured, truth []int
		for _, m := range list {
			measured = append(measured, m.egress)
			truth = append(truth, m.spec.Egress)
		}
		cdfs[kind] = stats.NewCDFInts(measured)
		truthCDFs[kind] = stats.NewCDFInts(truth)
	}

	table := &stats.Table{Header: []string{"Population", "Statistic", "Paper", "Ground truth", "Measured"}}
	type rowSpec struct {
		kind  population.Kind
		label string
		stat  string
		paper float64
		eval  func(c *stats.CDF) float64
	}
	rows := []rowSpec{
		{population.Enterprises, "Enterprises (email)", "P(egress > 20)", 0.50,
			func(c *stats.CDF) float64 { return c.Above(20) }},
		{population.ISPs, "ISPs (ad-network)", "P(egress > 11)", 0.50,
			func(c *stats.CDF) float64 { return c.Above(11) }},
		{population.OpenResolvers, "Open resolvers", "P(egress <= 5)", 0.85,
			func(c *stats.CDF) float64 { return c.At(5) }},
	}
	report := &Report{ID: "fig3", Title: "Number of egress IP addresses supported by resolution platforms (CDF)"}
	for _, row := range rows {
		measured := row.eval(cdfs[row.kind])
		truth := row.eval(truthCDFs[row.kind])
		table.AddRow(row.label, row.stat, stats.FormatPercent(row.paper),
			stats.FormatPercent(truth), stats.FormatPercent(measured))
		report.Checks = append(report.Checks,
			Check{Name: fmt.Sprintf("%s %s", row.label, row.stat), Paper: row.paper, Measured: measured, Tolerance: 0.12},
			Check{Name: fmt.Sprintf("%s measurement recovers truth", row.label), Paper: truth, Measured: measured, Tolerance: 0.05},
		)
	}

	plot := stats.RenderCDF(
		[]string{"open resolvers", "enterprises", "ISPs"},
		[]*stats.CDF{cdfs[population.OpenResolvers], cdfs[population.Enterprises], cdfs[population.ISPs]},
		60, 12)
	report.Text = table.String() + "\n" + plot
	return report, nil
}

// Figure4 reproduces Fig. 4: the CDF of the number of caches per
// resolution platform, as measured by CDE enumeration through each
// population's collection channel.
func Figure4(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ms, err := datasetMeasurements(ctx, cfg, false)
	if err != nil {
		return nil, err
	}

	cdfs := map[population.Kind]*stats.CDF{}
	exactRecovery := map[population.Kind]float64{}
	for kind, list := range ms {
		var measured []int
		exact := 0
		for _, m := range list {
			measured = append(measured, m.caches)
			if m.caches == m.spec.Caches {
				exact++
			}
		}
		cdfs[kind] = stats.NewCDFInts(measured)
		if len(list) > 0 {
			exactRecovery[kind] = float64(exact) / float64(len(list))
		}
	}

	table := &stats.Table{Header: []string{"Population", "Statistic", "Paper", "Measured", "Exact-recovery"}}
	rows := []struct {
		kind  population.Kind
		label string
		stat  string
		paper float64
		eval  func(c *stats.CDF) float64
	}{
		{population.OpenResolvers, "Open resolvers", "P(caches <= 2)", 0.70,
			func(c *stats.CDF) float64 { return c.At(2) }},
		{population.ISPs, "ISPs (ad-network)", "P(caches <= 3)", 0.60,
			func(c *stats.CDF) float64 { return c.At(3) }},
		{population.Enterprises, "Enterprises (email)", "P(caches <= 4)", 0.65,
			func(c *stats.CDF) float64 { return c.At(4) }},
	}
	report := &Report{ID: "fig4", Title: "Number of caches supported by resolution platforms (CDF)"}
	for _, row := range rows {
		measured := row.eval(cdfs[row.kind])
		table.AddRow(row.label, row.stat, stats.FormatPercent(row.paper),
			stats.FormatPercent(measured), stats.FormatPercent(exactRecovery[row.kind]))
		report.Checks = append(report.Checks,
			Check{Name: fmt.Sprintf("%s %s", row.label, row.stat), Paper: row.paper, Measured: measured, Tolerance: 0.12},
			Check{Name: fmt.Sprintf("%s exact recovery rate", row.label), Paper: 1.0, Measured: exactRecovery[row.kind], Tolerance: 0.05},
		)
	}

	plot := stats.RenderCDF(
		[]string{"open resolvers", "enterprises", "ISPs"},
		[]*stats.CDF{cdfs[population.OpenResolvers], cdfs[population.Enterprises], cdfs[population.ISPs]},
		60, 12)
	report.Text = table.String() + "\n" + plot
	return report, nil
}
