package experiments

import (
	"strings"
	"testing"
)

// smallConfig keeps measurement-heavy test runs quick; the benches and
// cmd/cdebench use the full default sizes.
func smallConfig() Config {
	return Config{Seed: 2017, OpenResolvers: 60, Enterprises: 60, ISPs: 60}
}

// statConfig is for experiments whose checks compare population shares:
// they need larger samples, and are cheap enough to afford them (Table I
// sends one email per server; Fig. 2 only generates populations).
func statConfig() Config {
	return Config{Seed: 2017, OpenResolvers: 600, Enterprises: 600, ISPs: 600}
}

func TestRegistryComplete(t *testing.T) {
	// Every table/figure of DESIGN.md §4 must have a driver.
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"thm51", "initvalidate", "carpet", "timing",
		"ablation-selection", "ablation-bypass", "ablation-threshold",
		"ablation-forwarder", "poisoning", "resilience", "edns", "ttlconsistency",
		"classify", "fingerprint", "ablation-crosstraffic", "selectionshare",
		"cost", "faults", "scale",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("missing driver %q", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(IDs()), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", smallConfig()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestCheckPass(t *testing.T) {
	if !(Check{Paper: 0.5, Measured: 0.55, Tolerance: 0.1}).Pass() {
		t.Error("within tolerance failed")
	}
	if (Check{Paper: 0.5, Measured: 0.7, Tolerance: 0.1}).Pass() {
		t.Error("out of tolerance passed")
	}
}

// runAndCheck executes a driver and requires every shape check to pass.
func runAndCheck(t *testing.T, id string) *Report {
	t.Helper()
	return runAndCheckCfg(t, id, smallConfig())
}

func runAndCheckCfg(t *testing.T, id string, cfg Config) *Report {
	t.Helper()
	report, err := Run(id, cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if report.Text == "" {
		t.Errorf("%s: empty text", id)
	}
	for _, c := range report.Checks {
		if !c.Pass() {
			t.Errorf("%s: check %q failed: paper=%.3f measured=%.3f (±%.3f)",
				id, c.Name, c.Paper, c.Measured, c.Tolerance)
		}
	}
	if !strings.Contains(report.Render(), report.Title) {
		t.Errorf("%s: Render misses title", id)
	}
	return report
}

func TestTableI(t *testing.T)        { runAndCheckCfg(t, "table1", statConfig()) }
func TestFigure2(t *testing.T)       { runAndCheckCfg(t, "fig2", statConfig()) }
func TestFigure5(t *testing.T)       { runAndCheck(t, "fig5") }
func TestFigure7(t *testing.T)       { runAndCheck(t, "fig7") }
func TestFigure8(t *testing.T)       { runAndCheck(t, "fig8") }
func TestTheorem51(t *testing.T)     { runAndCheck(t, "thm51") }
func TestInitValidate(t *testing.T)  { runAndCheck(t, "initvalidate") }
func TestCarpetBombing(t *testing.T) { runAndCheck(t, "carpet") }
func TestTimingChannel(t *testing.T) { runAndCheck(t, "timing") }

func TestAblationSelection(t *testing.T) { runAndCheck(t, "ablation-selection") }
func TestAblationBypass(t *testing.T)    { runAndCheck(t, "ablation-bypass") }
func TestAblationThreshold(t *testing.T) { runAndCheck(t, "ablation-threshold") }
func TestAblationForwarder(t *testing.T) { runAndCheck(t, "ablation-forwarder") }

func TestPoisoning(t *testing.T)      { runAndCheck(t, "poisoning") }
func TestResilience(t *testing.T)     { runAndCheck(t, "resilience") }
func TestEDNSSurvey(t *testing.T)     { runAndCheck(t, "edns") }
func TestTTLConsistency(t *testing.T) { runAndCheck(t, "ttlconsistency") }
func TestClassify(t *testing.T)       { runAndCheck(t, "classify") }
func TestFingerprint(t *testing.T)    { runAndCheck(t, "fingerprint") }
func TestCrossTraffic(t *testing.T)   { runAndCheck(t, "ablation-crosstraffic") }
func TestSelectionShare(t *testing.T) { runAndCheck(t, "selectionshare") }
func TestFaults(t *testing.T)         { runAndCheck(t, "faults") }

// TestScale runs the DES sweep at a reduced population (20K clients,
// 500 caches, 5 of them late); the checks themselves are
// population-size-independent.
func TestScale(t *testing.T) {
	runAndCheckCfg(t, "scale", Config{Seed: 2017, ScaleClients: 20_000, ScaleCaches: 500})
}

func TestFigure3(t *testing.T) {
	if testing.Short() {
		t.Skip("egress discovery across a population is slow")
	}
	runAndCheck(t, "fig3")
}

// midConfig matches the cdebench default: the Fig. 4/6 CDF-share checks
// need ~120 networks per dataset for their tolerances.
func midConfig() Config {
	return Config{Seed: 2017, OpenResolvers: 120, Enterprises: 120, ISPs: 120}
}

func TestFigure4(t *testing.T) { runAndCheckCfg(t, "fig4", midConfig()) }
func TestFigure6(t *testing.T) { runAndCheckCfg(t, "fig6", midConfig()) }

func TestDescriptionsCoverRegistry(t *testing.T) {
	for id := range Registry {
		if Descriptions[id] == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
	for id := range Descriptions {
		if _, ok := Registry[id]; !ok {
			t.Errorf("description for unknown experiment %q", id)
		}
	}
}

func TestCostAccounting(t *testing.T) {
	report := runAndCheck(t, "cost")
	// The run's own cost summary must come from the registry Run installs.
	if report.Cost.Probes == 0 {
		t.Error("Report.Cost.Probes = 0, want the run's metered probe count")
	}
	if report.Cost.Packets == 0 {
		t.Error("Report.Cost.Packets = 0, want the run's metered packet count")
	}
	if !strings.Contains(report.Render(), "Queries spent:") {
		t.Error("Render misses the queries-spent line")
	}
}
