// Package dnstree assembles the authoritative side of the simulated
// Internet: a root nameserver, an "example." TLD nameserver, and arbitrary
// delegated domains below it. Every experiment and test that needs full
// iterative resolution builds its hierarchy with this package.
package dnstree

import (
	"fmt"
	"net/netip"

	"dnscde/internal/authns"
	"dnscde/internal/clock"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/zone"
)

// Default infrastructure addresses (TEST-NET-3 and documentation ranges).
var (
	DefaultRootAddr = netip.MustParseAddr("203.0.113.253")
	DefaultTLDAddr  = netip.MustParseAddr("203.0.113.254")
)

// Tree is a running root + TLD pair on a simulated network.
type Tree struct {
	Net      *netsim.Network
	RootAddr netip.Addr
	TLDAddr  netip.Addr
	Root     *authns.Server
	TLD      *authns.Server

	rootZone *zone.Zone
	tldZone  *zone.Zone
	clk      clock.Clock
	ttl      uint32
}

// Build creates the root (".") and TLD ("example.") servers and registers
// them on n with the given link profile.
func Build(n *netsim.Network, clk clock.Clock, profile netsim.LinkProfile) (*Tree, error) {
	t := &Tree{
		Net:      n,
		RootAddr: DefaultRootAddr,
		TLDAddr:  DefaultTLDAddr,
		clk:      clk,
		ttl:      86400,
	}

	t.rootZone = zone.New(".")
	if err := zone.Apex(t.rootZone, "ns.root.", t.RootAddr, t.ttl); err != nil {
		return nil, fmt.Errorf("dnstree: root apex: %w", err)
	}
	// Delegate the "example." TLD.
	if err := t.rootZone.Add(dnswire.RR{Name: "example.", Class: dnswire.ClassIN, TTL: t.ttl,
		Data: dnswire.NSRecord{Host: "ns.tld.example."}}); err != nil {
		return nil, err
	}
	if err := t.rootZone.Add(dnswire.RR{Name: "ns.tld.example.", Class: dnswire.ClassIN, TTL: t.ttl,
		Data: dnswire.ARecord{Addr: t.TLDAddr}}); err != nil {
		return nil, err
	}

	t.tldZone = zone.New("example.")
	if err := zone.Apex(t.tldZone, "ns.tld.example.", t.TLDAddr, t.ttl); err != nil {
		return nil, fmt.Errorf("dnstree: tld apex: %w", err)
	}

	t.Root = authns.NewServer([]*zone.Zone{t.rootZone}, authns.WithClock(clk))
	t.TLD = authns.NewServer([]*zone.Zone{t.tldZone}, authns.WithClock(clk))
	n.Register(t.RootAddr, profile, t.Root)
	n.Register(t.TLDAddr, profile, t.TLD)
	return t, nil
}

// Roots returns the root hint addresses for platform configs.
func (t *Tree) Roots() []netip.Addr { return []netip.Addr{t.RootAddr} }

// Delegate adds a delegation for origin (which must be under "example.")
// from the TLD zone to the nameserver host at nsAddr.
func (t *Tree) Delegate(origin, nsHost string, nsAddr netip.Addr) error {
	origin = dnswire.CanonicalName(origin)
	nsHost = dnswire.CanonicalName(nsHost)
	if !dnswire.IsSubdomain(origin, "example.") {
		return fmt.Errorf("dnstree: %q is not under example.", origin)
	}
	if err := t.tldZone.Add(dnswire.RR{Name: origin, Class: dnswire.ClassIN, TTL: t.ttl,
		Data: dnswire.NSRecord{Host: nsHost}}); err != nil {
		return err
	}
	// Glue is only valid inside the TLD zone when the host is below it.
	if dnswire.IsSubdomain(nsHost, "example.") {
		return t.tldZone.Add(dnswire.RR{Name: nsHost, Class: dnswire.ClassIN, TTL: t.ttl,
			Data: dnswire.ARecord{Addr: nsAddr}})
	}
	return nil
}

// AttachAuthority registers an authoritative server for zones at addr and
// delegates each zone that is a *direct* child of "example." from the
// TLD. Deeper zones (e.g. sub.cache.example) are not touched — their
// delegation belongs in the parent zone, as in the paper's §IV-B2b setup
// where the parent and child run on different servers. It returns the
// server.
func (t *Tree) AttachAuthority(addr netip.Addr, profile netsim.LinkProfile, zones ...*zone.Zone) (*authns.Server, error) {
	srv := authns.NewServer(zones, authns.WithClock(t.clk))
	for _, z := range zones {
		if dnswire.CountLabels(z.Origin()) != 2 {
			continue
		}
		soa, err := z.SOA()
		if err != nil {
			return nil, fmt.Errorf("dnstree: zone %q: %w", z.Origin(), err)
		}
		nsHost := soa.Data.(dnswire.SOARecord).MName
		if err := t.Delegate(z.Origin(), nsHost, addr); err != nil {
			return nil, err
		}
	}
	t.Net.Register(addr, profile, srv)
	return srv, nil
}
