package dnstree

import (
	"context"
	"net/netip"
	"testing"

	"dnscde/internal/clock"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/zone"
)

var (
	authAddr  = netip.MustParseAddr("203.0.113.10")
	childAddr = netip.MustParseAddr("203.0.113.11")
	probeSrc  = netip.MustParseAddr("198.18.0.9")
)

func TestBuildServesRootAndTLD(t *testing.T) {
	n := netsim.New(1)
	tree, err := Build(n, clock.NewVirtual(), netsim.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	conn := n.Bind(probeSrc)
	// Root must refer "example." queries to the TLD.
	resp, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "foo.example.", dnswire.TypeA), tree.RootAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Authority) == 0 || resp.Authority[0].Type() != dnswire.TypeNS {
		t.Fatalf("root response = %s", resp.Summary())
	}
	if len(resp.Additional) == 0 {
		t.Error("root referral lacks glue")
	}
}

func TestAttachAuthorityDelegatesDirectChildrenOnly(t *testing.T) {
	n := netsim.New(1)
	tree, err := Build(n, clock.NewVirtual(), netsim.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := zone.BuildHierarchy("cache.example", 3, netip.MustParseAddr("192.0.2.80"), authAddr, childAddr, 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.AttachAuthority(authAddr, netsim.LinkProfile{}, h.Parent); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.AttachAuthority(childAddr, netsim.LinkProfile{}, h.Child); err != nil {
		t.Fatal(err)
	}

	conn := n.Bind(probeSrc)
	// TLD refers cache.example to the parent server.
	resp, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA), tree.TLDAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Authority) == 0 || dnswire.CanonicalName(resp.Authority[0].Name) != "cache.example." {
		t.Fatalf("TLD response = %s", resp.Summary())
	}
	// Parent refers sub.cache.example to the child server.
	resp, _, err = conn.Exchange(context.Background(), dnswire.NewQuery(2, "x-1.sub.cache.example.", dnswire.TypeA), authAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Authority) == 0 || dnswire.CanonicalName(resp.Authority[0].Name) != "sub.cache.example." {
		t.Fatalf("parent response = %s", resp.Summary())
	}
	// Child answers.
	resp, _, err = conn.Exchange(context.Background(), dnswire.NewQuery(3, "x-1.sub.cache.example.", dnswire.TypeA), childAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 1 {
		t.Fatalf("child response = %s", resp.Summary())
	}
}

func TestDelegateRejectsForeignOrigin(t *testing.T) {
	n := netsim.New(1)
	tree, err := Build(n, clock.NewVirtual(), netsim.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Delegate("other.org", "ns.other.org", authAddr); err == nil {
		t.Error("foreign origin accepted")
	}
}
