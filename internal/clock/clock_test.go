package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	before := time.Now()
	got := Real{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestVirtualStartsAtFixedEpoch(t *testing.T) {
	a, b := NewVirtual(), NewVirtual()
	if !a.Now().Equal(b.Now()) {
		t.Error("two virtual clocks start at different times")
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Advance(90 * time.Second)
	if got := v.Now().Sub(t0); got != 90*time.Second {
		t.Errorf("advanced %v, want 90s", got)
	}
}

func TestVirtualAdvanceNegativeIgnored(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Advance(-time.Hour)
	if !v.Now().Equal(t0) {
		t.Error("negative advance moved the clock")
	}
}

func TestVirtualAt(t *testing.T) {
	epoch := time.Date(2026, time.July, 6, 12, 0, 0, 0, time.UTC)
	v := NewVirtualAt(epoch)
	if !v.Now().Equal(epoch) {
		t.Errorf("Now() = %v, want %v", v.Now(), epoch)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Advance(time.Millisecond)
			_ = v.Now()
		}()
	}
	wg.Wait()
	if got := v.Now().Sub(t0); got != 50*time.Millisecond {
		t.Errorf("concurrent advances sum to %v, want 50ms", got)
	}
}
