// Package clock abstracts time so the simulated Internet (and the DNS
// caches' TTL arithmetic) can run on a deterministic virtual clock during
// experiments and tests, and on the wall clock when the CDE tools are used
// against real resolvers over UDP.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Virtual is a manually-advanced Clock. The zero value is not usable; use
// NewVirtual. Virtual is safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock starting at a fixed, arbitrary epoch
// so runs are reproducible.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Date(2017, time.June, 26, 0, 0, 0, 0, time.UTC)}
}

// NewVirtualAt returns a virtual clock starting at t.
func NewVirtualAt(t time.Time) *Virtual {
	return &Virtual{now: t}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d. Negative durations are ignored so
// the clock is monotone.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}
