package loadbal

import (
	"net/netip"
	"testing"

	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
)

func TestInstrumentCountsSelections(t *testing.T) {
	reg := metrics.New()
	sel := Instrument(NewRoundRobin(), reg, "loadbal.p")
	q := dnswire.Question{Name: "a.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN}
	src := netip.MustParseAddr("198.18.0.1")
	for i := 0; i < 7; i++ {
		sel.Select(q, src, 3)
	}
	s := reg.Snapshot()
	// Round robin over 3 caches for 7 picks: 3, 2, 2.
	want := map[string]int64{
		"loadbal.p.select.0": 3,
		"loadbal.p.select.1": 2,
		"loadbal.p.select.2": 2,
	}
	for name, w := range want {
		if got := s.Counter(name); got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
	if sel.Name() != "round-robin" || sel.Category() != TrafficDependent {
		t.Error("wrapper must delegate Name/Category")
	}
}

func TestInstrumentNilRegistryIsTransparent(t *testing.T) {
	inner := NewRandom(1)
	if sel := Instrument(inner, nil, "x"); sel != Selector(inner) {
		t.Error("nil registry must return the inner selector unchanged")
	}
}
