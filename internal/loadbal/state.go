package loadbal

import "fmt"

// State is the serializable position of a selector's strategy: the
// round-robin cursor or the RNG stream position, tagged with the strategy
// name so a restore into a differently configured selector is rejected
// instead of silently corrupting the chain. Key-dependent strategies are
// stateless and carry only the tag.
type State struct {
	Kind  string `json:"kind"`
	Pos   int    `json:"pos,omitempty"`
	Draws uint64 `json:"draws,omitempty"`
}

// CaptureState snapshots a selector's chain position. The Instrumented
// decorator is transparently unwrapped (its counters live in the metrics
// registry, which is checkpointed separately). The second result is false
// for selector implementations this package does not know how to persist.
func CaptureState(s Selector) (State, bool) {
	if w, ok := s.(*Instrumented); ok {
		s = w.Unwrap()
	}
	switch sel := s.(type) {
	case *RoundRobin:
		sel.mu.Lock()
		defer sel.mu.Unlock()
		return State{Kind: sel.Name(), Pos: sel.next}, true
	case *Random:
		sel.mu.Lock()
		defer sel.mu.Unlock()
		return State{Kind: sel.Name(), Draws: sel.src.Draws()}, true
	case *Weighted:
		sel.mu.Lock()
		defer sel.mu.Unlock()
		return State{Kind: sel.Name(), Draws: sel.src.Draws()}, true
	case HashQName, HashSourceIP:
		return State{Kind: s.Name()}, true
	default:
		return State{}, false
	}
}

// RestoreState repositions a selector at a captured chain position. The
// selector must be the same strategy the state was captured from (same
// Kind); the fresh selector is assumed to have been constructed with the
// same seed, so restoring reduces to fast-forwarding the stream or cursor.
func RestoreState(s Selector, st State) error {
	if w, ok := s.(*Instrumented); ok {
		s = w.Unwrap()
	}
	if got := s.Name(); got != st.Kind {
		return fmt.Errorf("loadbal: restore: selector is %q, state is for %q", got, st.Kind)
	}
	switch sel := s.(type) {
	case *RoundRobin:
		sel.mu.Lock()
		defer sel.mu.Unlock()
		sel.next = st.Pos
	case *Random:
		sel.mu.Lock()
		defer sel.mu.Unlock()
		sel.src.SkipTo(st.Draws)
	case *Weighted:
		sel.mu.Lock()
		defer sel.mu.Unlock()
		sel.src.SkipTo(st.Draws)
	case HashQName, HashSourceIP:
		// Stateless.
	default:
		return fmt.Errorf("loadbal: restore: selector %q has no persistable state", s.Name())
	}
	return nil
}
