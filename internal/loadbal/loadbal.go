// Package loadbal implements the cache-selection logic of a DNS resolution
// platform's load balancer (Fig. 1 of the paper).
//
// §IV-A of the paper identifies two main categories in the wild —
// traffic-dependent selection (e.g. round robin, which tries to spread
// query volume evenly) and unpredictable selection (e.g. uniform random) —
// plus "more complex" strategies that depend on the requested domain or
// the client's source IP. All four are implemented here; the enumeration
// analysis of §V-B (coupon collector) applies to the unpredictable
// category, while round robin needs only q = n probes.
package loadbal

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sync"

	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
)

// Category classifies a selection strategy, following §IV-A.
type Category uint8

// Strategy categories.
const (
	// TrafficDependent strategies spread query volume evenly; observing
	// them n times with distinct probes covers all caches.
	TrafficDependent Category = iota + 1
	// Unpredictable strategies pick caches randomly; enumeration becomes
	// a coupon-collector process.
	Unpredictable
	// KeyDependent strategies hash a property of the query (qname or
	// client address); repeated identical probes always hit one cache.
	KeyDependent
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case TrafficDependent:
		return "traffic-dependent"
	case Unpredictable:
		return "unpredictable"
	case KeyDependent:
		return "key-dependent"
	default:
		return fmt.Sprintf("category%d", c)
	}
}

// Selector picks which of n caches handles a query. Implementations must
// be safe for concurrent use.
type Selector interface {
	// Select returns a cache index in [0, n). n is at least 1.
	Select(q dnswire.Question, src netip.Addr, n int) int
	// Category reports the strategy's §IV-A classification.
	Category() Category
	// Name returns a short identifier for logs and experiment output.
	Name() string
}

// RoundRobin cycles through caches in order — the paper's example of a
// traffic-dependent strategy.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

var _ Selector = (*RoundRobin)(nil)

// NewRoundRobin returns a round-robin selector starting at cache 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Select implements Selector.
func (r *RoundRobin) Select(_ dnswire.Question, _ netip.Addr, n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.next % n
	r.next = (r.next + 1) % n
	return idx
}

// Category implements Selector.
func (*RoundRobin) Category() Category { return TrafficDependent }

// Name implements Selector.
func (*RoundRobin) Name() string { return "round-robin" }

// Random picks a cache uniformly at random — the paper's representative of
// the unpredictable category, and the model behind Theorem 5.1.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
	src *detpar.CountingSource
}

var _ Selector = (*Random)(nil)

// NewRandom returns a uniform random selector with a deterministic seed.
func NewRandom(seed int64) *Random {
	src := detpar.NewCountingSource(seed)
	return &Random{rng: rand.New(src), src: src}
}

// Select implements Selector.
func (r *Random) Select(_ dnswire.Question, _ netip.Addr, n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(n)
}

// Category implements Selector.
func (*Random) Category() Category { return Unpredictable }

// Name implements Selector.
func (*Random) Name() string { return "random" }

// HashQName maps each query name deterministically to a cache — one of the
// paper's "more complex" strategies ("a function of a requested domain in
// the query"). Identical probes always sample the same cache, which is why
// CDE needs unique probe names (the x-i names of §IV-B2).
type HashQName struct{}

var _ Selector = HashQName{}

// Select implements Selector.
func (HashQName) Select(q dnswire.Question, _ netip.Addr, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(dnswire.CanonicalName(q.Name)))
	return int(h.Sum32() % uint32(n))
}

// Category implements Selector.
func (HashQName) Category() Category { return KeyDependent }

// Name implements Selector.
func (HashQName) Name() string { return "hash-qname" }

// HashSourceIP maps each client address deterministically to a cache — the
// paper's other complex strategy ("a function of a source IP in a DNS
// request").
type HashSourceIP struct{}

var _ Selector = HashSourceIP{}

// Select implements Selector.
func (HashSourceIP) Select(_ dnswire.Question, src netip.Addr, n int) int {
	h := fnv.New32a()
	b, _ := src.MarshalBinary()
	_, _ = h.Write(b)
	return int(h.Sum32() % uint32(n))
}

// Category implements Selector.
func (HashSourceIP) Category() Category { return KeyDependent }

// Name implements Selector.
func (HashSourceIP) Name() string { return "hash-source-ip" }

// Weighted picks caches randomly with non-uniform probabilities, modelling
// heterogeneous platforms where some caches take more traffic. It is
// unpredictable, but the coupon-collector bound of Theorem 5.1 (uniform
// p_i = 1/n) becomes a lower bound: skewed weights need more probes.
type Weighted struct {
	mu      sync.Mutex
	rng     *rand.Rand
	src     *detpar.CountingSource
	weights []float64
	total   float64
}

var _ Selector = (*Weighted)(nil)

// NewWeighted returns a weighted random selector. The weights slice is
// copied; weights must be positive and at least as many as the cache count
// passed to Select.
func NewWeighted(seed int64, weights []float64) (*Weighted, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("loadbal: no weights")
	}
	total := 0.0
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("loadbal: weight %d is %v, want > 0", i, w)
		}
		total += w
	}
	src := detpar.NewCountingSource(seed)
	return &Weighted{
		rng:     rand.New(src),
		src:     src,
		weights: append([]float64(nil), weights...),
		total:   total,
	}, nil
}

// Select implements Selector. If n exceeds the configured weights, the
// extra caches get the mean weight.
func (w *Weighted) Select(_ dnswire.Question, _ netip.Addr, n int) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > len(w.weights) {
		// Degenerate configuration; fall back to uniform.
		return w.rng.Intn(n)
	}
	total := 0.0
	for _, wt := range w.weights[:n] {
		total += wt
	}
	x := w.rng.Float64() * total
	for i, wt := range w.weights[:n] {
		x -= wt
		if x < 0 {
			return i
		}
	}
	return n - 1
}

// Category implements Selector.
func (*Weighted) Category() Category { return Unpredictable }

// Name implements Selector.
func (*Weighted) Name() string { return "weighted-random" }
