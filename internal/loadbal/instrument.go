package loadbal

import (
	"fmt"
	"net/netip"
	"sync"

	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
)

// Instrumented decorates a Selector, counting how often each cache index
// is picked under "<prefix>.select.<idx>". The per-index distribution is
// the load balancer's ground-truth behaviour — what the enumeration
// experiments measure from the outside.
type Instrumented struct {
	inner  Selector
	reg    *metrics.Registry
	prefix string

	mu       sync.Mutex
	counters []*metrics.Counter // grown on demand, index-addressed
}

var _ Selector = (*Instrumented)(nil)

// Instrument wraps inner so selections are counted in reg. A nil registry
// returns inner unchanged — no wrapper cost when accounting is off.
func Instrument(inner Selector, reg *metrics.Registry, prefix string) Selector {
	if reg == nil {
		return inner
	}
	return &Instrumented{inner: inner, reg: reg, prefix: prefix}
}

// Select implements Selector.
func (s *Instrumented) Select(q dnswire.Question, src netip.Addr, n int) int {
	idx := s.inner.Select(q, src, n)
	s.counter(idx).Inc()
	return idx
}

// counter returns the handle for idx, creating intermediate handles so the
// slice stays index-addressed.
func (s *Instrumented) counter(idx int) *metrics.Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.counters) <= idx {
		s.counters = append(s.counters,
			s.reg.Counter(fmt.Sprintf("%s.select.%d", s.prefix, len(s.counters))))
	}
	return s.counters[idx]
}

// Unwrap returns the wrapped strategy, giving checkpoint code access to
// the stateful selector behind the counting decorator.
func (s *Instrumented) Unwrap() Selector { return s.inner }

// Category implements Selector, delegating to the wrapped strategy.
func (s *Instrumented) Category() Category { return s.inner.Category() }

// Name implements Selector, delegating to the wrapped strategy.
func (s *Instrumented) Name() string { return s.inner.Name() }
