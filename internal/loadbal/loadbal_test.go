package loadbal

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"

	"dnscde/internal/dnswire"
)

func qn(name string) dnswire.Question {
	return dnswire.Question{Name: dnswire.CanonicalName(name), Type: dnswire.TypeA, Class: dnswire.ClassIN}
}

var clientA = netip.MustParseAddr("192.0.2.1")

func TestRoundRobinCycles(t *testing.T) {
	s := NewRoundRobin()
	const n = 4
	for round := 0; round < 3; round++ {
		for want := 0; want < n; want++ {
			if got := s.Select(qn("a.example"), clientA, n); got != want {
				t.Fatalf("round %d: got %d, want %d", round, got, want)
			}
		}
	}
}

func TestRoundRobinCoversAllCachesInNQueries(t *testing.T) {
	// The §V-B claim: with round robin, q = n suffices.
	s := NewRoundRobin()
	const n = 7
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		seen[s.Select(qn("a.example"), clientA, n)] = true
	}
	if len(seen) != n {
		t.Errorf("covered %d caches in %d queries, want all", len(seen), n)
	}
}

func TestRoundRobinHandlesNChange(t *testing.T) {
	s := NewRoundRobin()
	for i := 0; i < 10; i++ {
		if got := s.Select(qn("a"), clientA, 5); got < 0 || got >= 5 {
			t.Fatalf("out of range: %d", got)
		}
	}
	// Shrinking n must not index out of range.
	for i := 0; i < 10; i++ {
		if got := s.Select(qn("a"), clientA, 2); got < 0 || got >= 2 {
			t.Fatalf("out of range after shrink: %d", got)
		}
	}
}

func TestRandomIsRoughlyUniform(t *testing.T) {
	s := NewRandom(42)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Select(qn("a.example"), clientA, n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("cache %d selected %d times, want ≈%.0f", i, c, want)
		}
	}
}

func TestHashQNameDeterministicPerName(t *testing.T) {
	s := HashQName{}
	const n = 8
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("x-%d.cache.example", i)
		first := s.Select(qn(name), clientA, n)
		for j := 0; j < 5; j++ {
			if got := s.Select(qn(name), clientA, n); got != first {
				t.Fatalf("%s: selection changed %d -> %d", name, first, got)
			}
		}
	}
}

func TestHashQNameSpreadsNames(t *testing.T) {
	s := HashQName{}
	const n = 4
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[s.Select(qn(fmt.Sprintf("x-%d.cache.example", i)), clientA, n)] = true
	}
	if len(seen) != n {
		t.Errorf("100 distinct names covered only %d/%d caches", len(seen), n)
	}
}

func TestHashQNameCaseInsensitive(t *testing.T) {
	s := HashQName{}
	if s.Select(qn("Name.Cache.Example"), clientA, 16) != s.Select(qn("name.cache.example."), clientA, 16) {
		t.Error("case variants hash differently")
	}
}

func TestHashSourceIPDeterministicPerClient(t *testing.T) {
	s := HashSourceIP{}
	const n = 8
	srcs := []netip.Addr{
		netip.MustParseAddr("192.0.2.1"),
		netip.MustParseAddr("192.0.2.2"),
		netip.MustParseAddr("203.0.113.77"),
	}
	for _, src := range srcs {
		first := s.Select(qn("a.example"), src, n)
		if got := s.Select(qn("totally-different.example"), src, n); got != first {
			t.Errorf("%v: qname influenced source-hash selection", src)
		}
	}
}

func TestWeightedRespectsWeights(t *testing.T) {
	s, err := NewWeighted(7, []float64{8, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 30000
	counts := make([]int, 3)
	for i := 0; i < trials; i++ {
		counts[s.Select(qn("a.example"), clientA, 3)]++
	}
	frac0 := float64(counts[0]) / trials
	if frac0 < 0.76 || frac0 > 0.84 {
		t.Errorf("heavy cache got %.3f of traffic, want ≈0.8", frac0)
	}
}

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted(1, nil); err == nil {
		t.Error("nil weights accepted")
	}
	if _, err := NewWeighted(1, []float64{1, -2}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedFallsBackWhenNTooLarge(t *testing.T) {
	s, err := NewWeighted(7, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := s.Select(qn("a"), clientA, 5); got < 0 || got >= 5 {
			t.Fatalf("out of range: %d", got)
		}
	}
}

func TestCategories(t *testing.T) {
	w, _ := NewWeighted(1, []float64{1})
	tests := []struct {
		s    Selector
		want Category
	}{
		{NewRoundRobin(), TrafficDependent},
		{NewRandom(1), Unpredictable},
		{HashQName{}, KeyDependent},
		{HashSourceIP{}, KeyDependent},
		{w, Unpredictable},
	}
	for _, tt := range tests {
		if got := tt.s.Category(); got != tt.want {
			t.Errorf("%s: category = %v, want %v", tt.s.Name(), got, tt.want)
		}
		if tt.s.Name() == "" {
			t.Errorf("%T has empty name", tt.s)
		}
	}
	if TrafficDependent.String() != "traffic-dependent" || Category(9).String() != "category9" {
		t.Error("category strings")
	}
}

func TestPropertySelectionsInRange(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	selectors := func(seed int64) []Selector {
		w, _ := NewWeighted(seed, []float64{3, 1, 1, 2})
		return []Selector{NewRoundRobin(), NewRandom(seed), HashQName{}, HashSourceIP{}, w}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		src := netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
		for _, s := range selectors(seed) {
			for i := 0; i < 20; i++ {
				got := s.Select(qn(fmt.Sprintf("n%d.example", r.Intn(100))), src, n)
				if got < 0 || got >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestConcurrentSelectors(t *testing.T) {
	w, _ := NewWeighted(3, []float64{1, 2, 3, 4})
	for _, s := range []Selector{NewRoundRobin(), NewRandom(3), w} {
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 500; j++ {
					if got := s.Select(qn("a.example"), clientA, 4); got < 0 || got >= 4 {
						t.Errorf("%s: out of range %d", s.Name(), got)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

func BenchmarkSelectors(b *testing.B) {
	w, _ := NewWeighted(1, []float64{1, 2, 3, 4})
	question := qn("bench.example")
	for _, s := range []Selector{NewRoundRobin(), NewRandom(1), HashQName{}, HashSourceIP{}, w} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := s.Select(question, clientA, 4); got < 0 || got >= 4 {
					b.Fatal(got)
				}
			}
		})
	}
}
