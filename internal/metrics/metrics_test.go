package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("probes.sent")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if again := r.Counter("probes.sent"); again != c {
		t.Error("second lookup returned a different handle")
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("anything")
	if c != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	c.Inc() // must not panic
	c.Add(7)
	if c.Value() != 0 {
		t.Error("nil counter must read zero")
	}
	h := r.Histogram("h", RTTBoundsUS)
	if h != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	h.Observe(42) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("rtt", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["rtt"]
	// v<=10: {5,10}; v<=100: {11,100}; v<=1000: {500}; overflow: {5000}.
	want := []int64{2, 2, 1, 1}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(snap.Buckets), len(want))
	}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Buckets[i], w)
		}
	}
	if snap.Count != 6 || snap.Sum != 5+10+11+100+500+5000 {
		t.Errorf("count/sum = %d/%d", snap.Count, snap.Sum)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := New()
	c := r.Counter("a")
	h := r.Histogram("h", []int64{10})
	c.Add(3)
	h.Observe(5)
	before := r.Snapshot()
	c.Add(4)
	r.Counter("b").Inc()
	h.Observe(50)
	d := r.Snapshot().Diff(before)
	if d.Counter("a") != 4 || d.Counter("b") != 1 {
		t.Errorf("diff counters = %v", d.Counters)
	}
	if _, ok := d.Counters["unchanged"]; ok {
		t.Error("unchanged counter leaked into diff")
	}
	hd := d.Histograms["h"]
	if hd.Count != 1 || hd.Sum != 50 {
		t.Errorf("diff histogram count/sum = %d/%d, want 1/50", hd.Count, hd.Sum)
	}
	if hd.Buckets[0] != 0 || hd.Buckets[1] != 1 {
		t.Errorf("diff histogram buckets = %v, want [0 1]", hd.Buckets)
	}
}

func TestSnapshotDiffDropsUnchanged(t *testing.T) {
	r := New()
	r.Counter("quiet").Add(2)
	r.Histogram("hq", []int64{1}).Observe(1)
	before := r.Snapshot()
	d := r.Snapshot().Diff(before)
	if len(d.Counters) != 0 || len(d.Histograms) != 0 {
		t.Errorf("no-activity diff not empty: %+v", d)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{
		Counters:   map[string]int64{"x": 1, "y": 2},
		Histograms: map[string]HistogramSnapshot{"h": {Bounds: []int64{10}, Buckets: []int64{1, 0}, Count: 1, Sum: 5}},
	}
	b := Snapshot{
		Counters:   map[string]int64{"y": 3, "z": 4},
		Histograms: map[string]HistogramSnapshot{"h": {Bounds: []int64{10}, Buckets: []int64{0, 2}, Count: 2, Sum: 60}},
	}
	m := a.Merge(b)
	if m.Counter("x") != 1 || m.Counter("y") != 5 || m.Counter("z") != 4 {
		t.Errorf("merge counters = %v", m.Counters)
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 65 || h.Buckets[0] != 1 || h.Buckets[1] != 2 {
		t.Errorf("merge histogram = %+v", h)
	}
	// Merge must not alias the inputs.
	m.Counters["x"] = 99
	if a.Counter("x") != 1 {
		t.Error("merge aliased input counters")
	}
}

func TestSnapshotTotal(t *testing.T) {
	s := Snapshot{Counters: map[string]int64{
		"dnscache.hits.p/cache-0": 3,
		"dnscache.hits.p/cache-1": 4,
		"dnscache.hitsother":      100,
		"dnscache.hits":           1,
	}}
	if got := s.Total("dnscache.hits"); got != 8 {
		t.Errorf("Total = %d, want 8 (exact name + dotted children only)", got)
	}
}

func TestFormatSortedAndDeterministic(t *testing.T) {
	r := New()
	r.Counter("zz").Inc()
	r.Counter("aa").Add(2)
	r.Histogram("mm", []int64{10}).Observe(4)
	out := r.Snapshot().Format()
	ia, iz, im := strings.Index(out, "aa"), strings.Index(out, "zz"), strings.Index(out, "mm")
	if !(ia < iz && iz < im) {
		t.Errorf("format not sorted (counters then histograms):\n%s", out)
	}
	if out != r.Snapshot().Format() {
		t.Error("format not deterministic")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a.b").Add(7)
	r.Histogram("h", []int64{10}).Observe(3)
	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("a.b") != 7 || back.Histograms["h"].Count != 1 {
		t.Errorf("round trip lost data: %s", blob)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h", RTTBoundsUS).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("shared") != 8000 {
		t.Errorf("shared = %d, want 8000", s.Counter("shared"))
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}

func TestRegistryMergeSnapshot(t *testing.T) {
	sub := New()
	sub.Counter("core.probes.sent").Add(10)
	sub.Histogram("rtt", []int64{5, 10}).Observe(3)
	sub.Histogram("rtt", []int64{5, 10}).Observe(7)

	svc := New()
	svc.Counter("campaigns.core.probes.sent").Add(2)
	svc.MergeSnapshot("campaigns", sub.Snapshot())
	svc.MergeSnapshot("campaigns", sub.Snapshot())

	snap := svc.Snapshot()
	if got := snap.Counter("campaigns.core.probes.sent"); got != 22 {
		t.Errorf("merged counter = %d, want 22", got)
	}
	h := snap.Histograms["campaigns.rtt"]
	if h.Count != 4 || h.Sum != 20 {
		t.Errorf("merged histogram = count %d sum %d, want 4/20", h.Count, h.Sum)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 2 {
		t.Errorf("merged buckets = %v", h.Buckets)
	}

	// Unlabeled merge keeps names as-is.
	plain := New()
	plain.MergeSnapshot("", sub.Snapshot())
	if got := plain.Snapshot().Counter("core.probes.sent"); got != 10 {
		t.Errorf("unlabeled merge counter = %d, want 10", got)
	}

	// Mismatched layouts: extra snapshot buckets fold into overflow.
	narrow := New()
	narrow.Histogram("rtt", []int64{5}).Observe(1)
	narrow.MergeSnapshot("", sub.Snapshot())
	nh := narrow.Snapshot().Histograms["rtt"]
	if nh.Count != 3 || nh.Buckets[0] != 2 || nh.Buckets[1] != 1 {
		t.Errorf("narrow merge = %+v", nh)
	}

	// Nil registry ignores the merge.
	var nilReg *Registry
	nilReg.MergeSnapshot("x", sub.Snapshot())
}
