// Package metrics is the probe-cost accounting layer: named atomic
// counters and fixed-bucket histograms behind a Registry, with
// snapshot/diff/merge for before/after bookkeeping. The paper's central
// quantitative claims are about measurement *cost* — Θ(n·H_n) queries to
// enumerate n caches (Thm 5.1), carpet-bombing overhead K, init/validate
// budgets — and this package is what lets every experiment report the
// query budget CDE actually spent rather than only the shapes it
// recovered.
//
// Determinism: the package never reads a clock or a random source —
// every recorded value is injected by the instrumented call site — and
// snapshots render in sorted name order, so instrumented simulations stay
// reproducible byte for byte (cdelint's walltime/detrand invariants hold
// trivially).
//
// Disabled instrumentation is free by construction: a nil *Registry
// returns nil handles, and every handle method is a no-op on a nil
// receiver, so the hot path pays one nil check and no allocation.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// a valid no-op handle.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a fixed-bucket histogram of int64 observations. Bucket i
// counts observations v <= Bounds[i]; the final implicit bucket counts
// overflow. A nil *Histogram is a valid no-op handle.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; misses land in overflow.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; zero on a nil receiver.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// RTTBoundsUS is the default per-link round-trip-time bucket layout, in
// microseconds: 100µs to 2.5s in roughly 1-2.5-5 steps, spanning the
// simulated LAN latencies up to a lost-packet retransmission timeout.
var RTTBoundsUS = []int64{
	100, 250, 500,
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000,
}

// Registry holds named counters and histograms. A nil *Registry hands out
// nil handles, so instrumented code needs no enabled/disabled branches.
// Registry is safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (the no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds (which must be sorted ascending) on first use.
// An existing histogram keeps its original bounds. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := append([]int64(nil), bounds...)
		h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the upper bucket bounds; Buckets has one extra final
	// element counting overflow observations.
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// Snapshot is a frozen copy of a registry's state. The zero value is an
// empty snapshot. Snapshots are plain data: they marshal to JSON directly
// (map keys sort, so the encoding is deterministic).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Bounds:  append([]int64(nil), h.bounds...),
				Buckets: make([]int64, len(h.buckets)),
				Count:   h.count.Load(),
				Sum:     h.sum.Load(),
			}
			for i := range h.buckets {
				hs.Buckets[i] = h.buckets[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Counter returns the snapshotted value of the named counter (zero when
// absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Total sums every counter whose name equals prefix or starts with
// prefix + "." — the aggregate over a dotted-name family such as
// "dnscache.hits".
func (s Snapshot) Total(prefix string) int64 {
	var total int64
	dotted := prefix + "."
	for name, v := range s.Counters {
		if name == prefix || strings.HasPrefix(name, dotted) {
			total += v
		}
	}
	return total
}

// Diff returns s - base: the activity recorded between the two snapshots.
// Counters and histogram counts that did not change are dropped, so the
// result isolates one measurement's cost.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := Snapshot{}
	for name, v := range s.Counters {
		if d := v - base.Counters[name]; d != 0 {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[name] = d
		}
	}
	for name, h := range s.Histograms {
		b := base.Histograms[name]
		if h.Count == b.Count && h.Sum == b.Sum {
			continue
		}
		d := HistogramSnapshot{
			Bounds:  append([]int64(nil), h.Bounds...),
			Buckets: make([]int64, len(h.Buckets)),
			Count:   h.Count - b.Count,
			Sum:     h.Sum - b.Sum,
		}
		for i, v := range h.Buckets {
			if i < len(b.Buckets) {
				v -= b.Buckets[i]
			}
			d.Buckets[i] = v
		}
		if out.Histograms == nil {
			out.Histograms = make(map[string]HistogramSnapshot)
		}
		out.Histograms[name] = d
	}
	return out
}

// Merge returns the element-wise sum of s and other. Histograms sharing a
// name must share a bucket layout; s's layout wins when they differ.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{}
	for name, v := range s.Counters {
		if out.Counters == nil {
			out.Counters = make(map[string]int64)
		}
		out.Counters[name] = v
	}
	for name, v := range other.Counters {
		if out.Counters == nil {
			out.Counters = make(map[string]int64)
		}
		out.Counters[name] += v
	}
	for name, h := range s.Histograms {
		if out.Histograms == nil {
			out.Histograms = make(map[string]HistogramSnapshot)
		}
		out.Histograms[name] = cloneHistogramSnapshot(h)
	}
	for name, h := range other.Histograms {
		if out.Histograms == nil {
			out.Histograms = make(map[string]HistogramSnapshot)
		}
		have, ok := out.Histograms[name]
		if !ok {
			out.Histograms[name] = cloneHistogramSnapshot(h)
			continue
		}
		have.Count += h.Count
		have.Sum += h.Sum
		for i := range have.Buckets {
			if i < len(h.Buckets) {
				have.Buckets[i] += h.Buckets[i]
			}
		}
		out.Histograms[name] = have
	}
	return out
}

// MergeSnapshot folds a snapshot into the registry, optionally
// namespacing every metric under label + ".". It is how a sub-registry
// (one campaign run, one worker) rolls up into a long-lived service
// registry: counters add, histograms with matching names absorb the
// snapshot's buckets (the registry's bucket layout wins; extra snapshot
// buckets fold into overflow). A nil registry ignores the merge.
func (r *Registry) MergeSnapshot(label string, s Snapshot) {
	if r == nil {
		return
	}
	prefix := ""
	if label != "" {
		prefix = label + "."
	}
	for name, v := range s.Counters {
		r.Counter(prefix + name).Add(v)
	}
	for name, hs := range s.Histograms {
		r.Histogram(prefix+name, hs.Bounds).absorb(hs)
	}
}

// absorb adds a snapshot's observations into the histogram. Buckets
// align index-wise; snapshot buckets beyond the histogram's layout land
// in overflow.
func (h *Histogram) absorb(hs HistogramSnapshot) {
	if h == nil {
		return
	}
	last := len(h.buckets) - 1
	for i, v := range hs.Buckets {
		if i > last {
			h.buckets[last].Add(v)
			continue
		}
		h.buckets[i].Add(v)
	}
	h.count.Add(hs.Count)
	h.sum.Add(hs.Sum)
}

func cloneHistogramSnapshot(h HistogramSnapshot) HistogramSnapshot {
	return HistogramSnapshot{
		Bounds:  append([]int64(nil), h.Bounds...),
		Buckets: append([]int64(nil), h.Buckets...),
		Count:   h.Count,
		Sum:     h.Sum,
	}
}

// Names returns the counter names in sorted order.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Format renders the snapshot as aligned text, names sorted, histograms
// as count/sum/mean — the deterministic human-readable dump used by the
// command-line cost summaries.
func (s Snapshot) Format() string {
	var sb strings.Builder
	width := 0
	for name := range s.Counters {
		if len(name) > width {
			width = len(name)
		}
	}
	for name := range s.Histograms {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range s.Names() {
		fmt.Fprintf(&sb, "  %-*s %d\n", width, name, s.Counters[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		mean := int64(0)
		if h.Count > 0 {
			mean = h.Sum / h.Count
		}
		fmt.Fprintf(&sb, "  %-*s count=%d sum=%d mean=%d\n", width, name, h.Count, h.Sum, mean)
	}
	return sb.String()
}
