package metrics

import (
	"reflect"
	"testing"
)

// mergeFixtures returns two overlapping snapshots: shared and distinct
// counters, plus histograms with identical bounds (the only layout the
// restore path ever merges).
func mergeFixtures() (Snapshot, Snapshot) {
	s1 := Snapshot{
		Counters: map[string]int64{"core.probes.sent": 10, "netsim.retries": 3, "only.in.one": 7, "zero.counter": 0},
		Histograms: map[string]HistogramSnapshot{
			"netsim.rtt.us": {Bounds: []int64{100, 1000}, Buckets: []int64{2, 3, 1}, Count: 6, Sum: 4200},
		},
	}
	s2 := Snapshot{
		Counters: map[string]int64{"core.probes.sent": 5, "netsim.retries": 1, "only.in.two": 11},
		Histograms: map[string]HistogramSnapshot{
			"netsim.rtt.us": {Bounds: []int64{100, 1000}, Buckets: []int64{1, 0, 4}, Count: 5, Sum: 9000},
			"core.lag.us":   {Bounds: []int64{50}, Buckets: []int64{9, 2}, Count: 11, Sum: 500},
		},
	}
	return s1, s2
}

// TestMergeSnapshotOrderIndependent asserts the merge is commutative:
// folding the same set of snapshots into a registry in any order yields
// identical final snapshots. The campaign engine and checkpoint restore
// both rely on this — per-trial registries are merged in whatever order
// trials finish, and the aggregate must not depend on it.
func TestMergeSnapshotOrderIndependent(t *testing.T) {
	s1, s2 := mergeFixtures()
	ab, ba := New(), New()
	ab.MergeSnapshot("", s1)
	ab.MergeSnapshot("", s2)
	ba.MergeSnapshot("", s2)
	ba.MergeSnapshot("", s1)
	got, want := ab.Snapshot(), ba.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge order changed the aggregate:\n s1,s2: %+v\n s2,s1: %+v", got, want)
	}
	if got.Counters["core.probes.sent"] != 15 {
		t.Errorf("shared counter = %d, want 15", got.Counters["core.probes.sent"])
	}
	if h := got.Histograms["netsim.rtt.us"]; h.Count != 11 || h.Sum != 13200 {
		t.Errorf("merged histogram count/sum = %d/%d, want 11/13200", h.Count, h.Sum)
	}
}

// TestMergeSnapshotRestoresExactly asserts the checkpoint-restore
// identity: merging a captured snapshot into a fresh all-zero registry
// reproduces it exactly, including zero-valued counters (the restored
// handle set must match the original's so later snapshots stay
// byte-comparable).
func TestMergeSnapshotRestoresExactly(t *testing.T) {
	s1, s2 := mergeFixtures()
	orig := New()
	orig.MergeSnapshot("", s1)
	orig.MergeSnapshot("", s2)
	captured := orig.Snapshot()

	fresh := New()
	fresh.MergeSnapshot("", captured)
	if got := fresh.Snapshot(); !reflect.DeepEqual(got, captured) {
		t.Errorf("restore drifted:\n restored: %+v\n captured: %+v", got, captured)
	}
	if _, ok := fresh.Snapshot().Counters["zero.counter"]; !ok {
		t.Error("zero-valued counter dropped by restore")
	}
}
