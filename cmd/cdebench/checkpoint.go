package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dnscde/internal/dnscache"
	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/scenario"
	"dnscde/internal/simtest"
	"dnscde/internal/worldstate"
)

// This file hosts the two checkpoint-centric experiments that sit
// outside the experiments registry (like -exp scenario): `bisect`, the
// divergence bisection harness, and `checkpoint`, the codec benchmark
// CI tracks in bench-checkpoint.json. Wall-clock reads are fine here:
// both experiments measure the host, not the simulation.

// bisectJSON is one scenario's bisection verdict in -json form.
type bisectJSON struct {
	Scenario string `json:"scenario"`
	// Barriers is the number of candidate snapshot barriers (0..W for W
	// workloads); ShardsA/ShardsB are the two schedulers compared.
	Barriers int `json:"barriers"`
	ShardsA  int `json:"shards_a"`
	ShardsB  int `json:"shards_b"`
	// Probes counts CheckpointTrial invocations the search spent.
	Probes   int    `json:"probes"`
	Diverged bool   `json:"diverged"`
	FirstBad int    `json:"first_divergent_barrier"`
	Diff     string `json:"diff,omitempty"`
}

// runBisect sweeps the scenario corpus, comparing trial-0 snapshot
// bytes between two shard counts and binary-searching the first
// workload barrier where they diverge. With the current codebase every
// scenario must report "no divergence" — the harness exists for the day
// a scheduler change breaks shard invariance, when it localizes the
// breakage to one workload instead of one final report. Divergence is
// assumed persistent (state deltas keep accruing), which is what makes
// bisection sound. A positive control (a deliberately perturbed image)
// proves the comparator can see divergence at all.
func runBisect(ctx context.Context, dir string, shards int, asJSON bool) int {
	shardsA, shardsB := 1, shards
	if shardsB <= 1 {
		shardsB = 4
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.scn"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "cdebench: bisect: no *.scn files in %s\n", dir)
		return 1
	}
	sort.Strings(paths)
	enc := json.NewEncoder(os.Stdout)
	failed := 0
	for _, path := range paths {
		sc, err := scenario.LoadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdebench: bisect: %v\n", err)
			return 1
		}
		res, err := bisectScenario(ctx, sc, shardsA, shardsB)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdebench: bisect %s: %v\n", sc.Name, err)
			return 1
		}
		if res.Diverged {
			failed++
		}
		if asJSON {
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "cdebench: encoding %s: %v\n", sc.Name, err)
				return 1
			}
			continue
		}
		if res.Diverged {
			fmt.Printf("%-24s DIVERGED at barrier %d (shards %d vs %d, %d probes)\n%s\n",
				res.Scenario, res.FirstBad, res.ShardsA, res.ShardsB, res.Probes, res.Diff)
		} else {
			fmt.Printf("%-24s identical at all %d barriers (shards %d vs %d, %d probes)\n",
				res.Scenario, res.Barriers, res.ShardsA, res.ShardsB, res.Probes)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "cdebench: %d scenario(s) diverge between shard counts\n", failed)
		return 1
	}
	return 0
}

// bisectScenario locates the first divergent barrier for one scenario.
func bisectScenario(ctx context.Context, sc *scenario.Scenario, shardsA, shardsB int) (bisectJSON, error) {
	res := bisectJSON{
		Scenario: sc.Name,
		Barriers: len(sc.Workloads) + 1,
		ShardsA:  shardsA,
		ShardsB:  shardsB,
		FirstBad: -1,
	}
	snaps := func(barrier int) ([]byte, []byte, error) {
		a, err := scenario.CheckpointTrial(ctx, sc, 0, barrier, shardsA)
		if err != nil {
			return nil, nil, err
		}
		b, err := scenario.CheckpointTrial(ctx, sc, 0, barrier, shardsB)
		if err != nil {
			return nil, nil, err
		}
		res.Probes += 2
		return a, b, nil
	}

	// Positive control first: a perturbed image must read as divergent,
	// or a "no divergence" verdict below means nothing.
	ctrl, err := scenario.CheckpointTrial(ctx, sc, 0, 0, shardsA)
	if err != nil {
		return res, err
	}
	res.Probes++
	img, err := worldstate.Decode(ctrl)
	if err != nil {
		return res, err
	}
	img.Meta.SessionCursor++
	mutated, err := worldstate.Encode(img)
	if err != nil {
		return res, err
	}
	if bytes.Equal(ctrl, mutated) {
		return res, fmt.Errorf("positive control failed: perturbed image re-encoded identically")
	}

	// Divergence persists once introduced, so the final barrier decides
	// whether there is anything to bisect.
	last := len(sc.Workloads)
	a, b, err := snaps(last)
	if err != nil {
		return res, err
	}
	if bytes.Equal(a, b) {
		return res, nil
	}
	res.Diverged = true
	lo, hi := 0, last // invariant: barrier hi diverges
	for lo < hi {
		mid := (lo + hi) / 2
		a, b, err = snaps(mid)
		if err != nil {
			return res, err
		}
		if bytes.Equal(a, b) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	res.FirstBad = lo
	a, b, err = snaps(lo)
	if err != nil {
		return res, err
	}
	ia, errA := worldstate.Decode(a)
	ib, errB := worldstate.Decode(b)
	if errA != nil || errB != nil {
		res.Diff = "snapshot bytes differ (undecodable for field diff)"
	} else {
		res.Diff = worldstate.Diff(ia, ib)
	}
	return res, nil
}

// checkpointBenchJSON is the codec benchmark record: `cdebench -exp
// checkpoint -json | tee bench-checkpoint.json` is the artifact CI
// uploads alongside bench-wall.json.
type checkpointBenchJSON struct {
	Clients int   `json:"clients"`
	Caches  int   `json:"caches"`
	Shards  int   `json:"shards"`
	Seed    int64 `json:"seed"`
	// Entries is the cache-item population actually installed
	// (Clients spread round-robin over Caches).
	Entries       int     `json:"entries"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	CaptureMS     float64 `json:"capture_ms"`
	EncodeMS      float64 `json:"encode_ms"`
	DecodeMS      float64 `json:"decode_ms"`
	RestoreMS     float64 `json:"restore_ms"`
	// RoundTrip is true when the restored world's re-encoded snapshot is
	// byte-identical to the original — the correctness gate on the
	// numbers above.
	RoundTrip bool `json:"round_trip"`
}

// runCheckpointBench measures the worldstate codec on a large world:
// a platform with -caches caches holding -clients entries is captured,
// encoded, decoded and restored into a fresh world, and the restored
// world must re-encode byte-identically.
func runCheckpointBench(clients, caches int, seed int64, shards int, asJSON bool) int {
	res, err := checkpointBench(clients, caches, seed, shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdebench: checkpoint: %v\n", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "cdebench: checkpoint: %v\n", err)
			return 1
		}
	} else {
		fmt.Printf("checkpoint codec: %d entries across %d caches (shards %d)\n", res.Entries, res.Caches, res.Shards)
		fmt.Printf("  snapshot size:  %d bytes\n", res.SnapshotBytes)
		fmt.Printf("  capture %.1fms  encode %.1fms  decode %.1fms  restore %.1fms\n",
			res.CaptureMS, res.EncodeMS, res.DecodeMS, res.RestoreMS)
		fmt.Printf("  round trip:     byte-identical = %v\n", res.RoundTrip)
	}
	if !res.RoundTrip {
		fmt.Fprintf(os.Stderr, "cdebench: checkpoint: restored world re-encoded differently\n")
		return 1
	}
	return 0
}

// benchWorld builds the benchmark world: one platform with the given
// cache count, entries installed directly through the checkpoint API
// (the codec under test does not care how entries got there, and direct
// installation keeps a 100K-entry bench in CI budget).
func benchWorld(clients, caches int, seed int64, shards int) (*simtest.World, error) {
	w, err := simtest.New(simtest.Options{Seed: seed, Metrics: metrics.New(), Shards: shards})
	if err != nil {
		return nil, err
	}
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "bench", Caches: caches, Ingress: 2, Egress: 4, Seed: seed,
		Profile: netsim.LinkProfile{OneWay: 2 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	handles := plat.Caches()
	stored := w.Clock.Now()
	items := make([][]dnscache.ItemState, len(handles))
	for i := 0; i < clients; i++ {
		name := fmt.Sprintf("q%07d.bench.example.", i)
		addr := netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		c := i % len(handles)
		items[c] = append(items[c], dnscache.ItemState{
			Key: name + "|IN|A",
			Entry: dnscache.Entry{
				Records: []dnswire.RR{{
					Name: name, Class: dnswire.ClassIN, TTL: 300,
					Data: dnswire.ARecord{Addr: addr},
				}},
			},
			Stored:  stored,
			Expires: stored.Add(300 * time.Second),
		})
	}
	for c, h := range handles {
		h.RestoreItems(items[c])
	}
	return w, nil
}

// checkpointBench runs the four measured phases.
func checkpointBench(clients, caches int, seed int64, shards int) (checkpointBenchJSON, error) {
	res := checkpointBenchJSON{
		Clients: clients, Caches: caches, Shards: shards, Seed: seed, Entries: clients,
	}
	w, err := benchWorld(clients, caches, seed, shards)
	if err != nil {
		return res, err
	}

	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	//cdelint:allow walltime the codec benchmark measures host time by design
	start := time.Now()
	img, err := w.Snapshot(nil)
	if err != nil {
		return res, err
	}
	res.CaptureMS = ms(time.Since(start))

	//cdelint:allow walltime the codec benchmark measures host time by design
	start = time.Now()
	buf, err := worldstate.Encode(img)
	if err != nil {
		return res, err
	}
	res.EncodeMS = ms(time.Since(start))
	res.SnapshotBytes = len(buf)

	//cdelint:allow walltime the codec benchmark measures host time by design
	start = time.Now()
	decoded, err := worldstate.Decode(buf)
	if err != nil {
		return res, err
	}
	res.DecodeMS = ms(time.Since(start))

	// Restore targets a fresh world built the same way but unpopulated —
	// restore replaces cache contents wholesale.
	w2, err := benchWorld(0, caches, seed, shards)
	if err != nil {
		return res, err
	}
	//cdelint:allow walltime the codec benchmark measures host time by design
	start = time.Now()
	if err := w2.Restore(decoded); err != nil {
		return res, err
	}
	res.RestoreMS = ms(time.Since(start))

	img2, err := w2.Snapshot(nil)
	if err != nil {
		return res, err
	}
	buf2, err := worldstate.Encode(img2)
	if err != nil {
		return res, err
	}
	res.RoundTrip = bytes.Equal(buf, buf2)
	return res, nil
}
