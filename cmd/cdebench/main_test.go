package main

import (
	"os"
	"testing"

	"dnscde/internal/clock"
)

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-list exit = %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, clock.NewVirtual()); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-exp", "nope"}, clock.NewVirtual()); code != 1 {
		t.Errorf("unknown experiment exit = %d", code)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// ablation-bypass is the cheapest full experiment (three platforms).
	if code := run([]string{"-exp", "ablation-bypass"}, clock.NewVirtual()); code != 0 {
		t.Errorf("ablation-bypass exit = %d", code)
	}
}

func TestRunBadFaultsProfile(t *testing.T) {
	if code := run([]string{"-exp", "faults", "-faults", "bogus=1"}, clock.NewVirtual()); code != 2 {
		t.Errorf("bad -faults exit = %d", code)
	}
}

func TestRunExperimentUnderFaults(t *testing.T) {
	// Any experiment must run (not necessarily pass its calibrated
	// shape checks) with an injected platform fault profile.
	if code := run([]string{"-exp", "ablation-bypass", "-faults", "burst=0.02:4"}, clock.NewVirtual()); code > 1 {
		t.Errorf("ablation-bypass under -faults exit = %d, want 0 or 1", code)
	}
}

func TestRunJSON(t *testing.T) {
	if code := run([]string{"-exp", "resilience", "-json"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-json exit = %d", code)
	}
	if code := run([]string{"-exp", "resilience", "-json", "-v"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-json -v exit = %d", code)
	}
}

// scenarioCorpus reaches the checked-in corpus from the package dir.
const scenarioCorpus = "../../internal/scenario/testdata/scenarios"

func TestRunScenarioConformance(t *testing.T) {
	if code := run([]string{"-exp", "scenario", "-scenarios", scenarioCorpus}, clock.NewVirtual()); code != 0 {
		t.Errorf("-exp scenario exit = %d", code)
	}
	if code := run([]string{"-exp", "scenario", "-scenarios", scenarioCorpus, "-json"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-exp scenario -json exit = %d", code)
	}
}

func TestRunScenarioMissingDir(t *testing.T) {
	if code := run([]string{"-exp", "scenario", "-scenarios", t.TempDir()}, clock.NewVirtual()); code != 1 {
		t.Errorf("empty corpus dir exit = %d, want 1", code)
	}
}

func TestRunScenarioInvalidGrammar(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/bad.scn", []byte("bananas\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-exp", "scenario", "-scenarios", dir}, clock.NewVirtual()); code != 1 {
		t.Errorf("invalid grammar exit = %d, want 1", code)
	}
}

func TestRunUpdateRequiresScenarioExp(t *testing.T) {
	if code := run([]string{"-exp", "fig4", "-update"}, clock.NewVirtual()); code != 2 {
		t.Errorf("-update without -exp scenario exit = %d, want 2", code)
	}
}

func TestRunScenarioUpdateWritesGolden(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(scenarioCorpus + "/open-resolver-1.scn")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/open-resolver-1.scn", src, 0o644); err != nil {
		t.Fatal(err)
	}
	// First pass fails (no golden yet), -update writes it, verify passes.
	if code := run([]string{"-exp", "scenario", "-scenarios", dir}, clock.NewVirtual()); code != 1 {
		t.Errorf("missing golden exit = %d, want 1", code)
	}
	if code := run([]string{"-exp", "scenario", "-scenarios", dir, "-update"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-update exit = %d", code)
	}
	if _, err := os.Stat(dir + "/golden/open-resolver-1.json"); err != nil {
		t.Errorf("golden not written: %v", err)
	}
	if code := run([]string{"-exp", "scenario", "-scenarios", dir}, clock.NewVirtual()); code != 0 {
		t.Errorf("verify after -update exit = %d", code)
	}
}

func TestRunBisectCorpusInvariant(t *testing.T) {
	if code := run([]string{"-exp", "bisect", "-scenarios", scenarioCorpus}, clock.NewVirtual()); code != 0 {
		t.Errorf("-exp bisect exit = %d, want 0", code)
	}
}

func TestRunBisectMissingDir(t *testing.T) {
	if code := run([]string{"-exp", "bisect", "-scenarios", t.TempDir()}, clock.NewVirtual()); code != 1 {
		t.Errorf("-exp bisect on empty dir exit = %d, want 1", code)
	}
}

func TestRunCheckpointExp(t *testing.T) {
	if code := run([]string{"-exp", "checkpoint", "-clients", "500", "-caches", "8", "-json"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-exp checkpoint exit = %d, want 0", code)
	}
}

// TestCheckpointBenchRoundTrip pins the benchmark's correctness gate:
// the restored world re-encodes byte-identically, at a small population
// and on a sharded scheduler.
func TestCheckpointBenchRoundTrip(t *testing.T) {
	res, err := checkpointBench(500, 8, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RoundTrip {
		t.Error("restored world re-encoded differently")
	}
	if res.Entries != 500 || res.SnapshotBytes == 0 {
		t.Errorf("bench record looks wrong: %+v", res)
	}
}
