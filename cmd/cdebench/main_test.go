package main

import (
	"testing"

	"dnscde/internal/clock"
)

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-list exit = %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, clock.NewVirtual()); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-exp", "nope"}, clock.NewVirtual()); code != 1 {
		t.Errorf("unknown experiment exit = %d", code)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// ablation-bypass is the cheapest full experiment (three platforms).
	if code := run([]string{"-exp", "ablation-bypass"}, clock.NewVirtual()); code != 0 {
		t.Errorf("ablation-bypass exit = %d", code)
	}
}

func TestRunBadFaultsProfile(t *testing.T) {
	if code := run([]string{"-exp", "faults", "-faults", "bogus=1"}, clock.NewVirtual()); code != 2 {
		t.Errorf("bad -faults exit = %d", code)
	}
}

func TestRunExperimentUnderFaults(t *testing.T) {
	// Any experiment must run (not necessarily pass its calibrated
	// shape checks) with an injected platform fault profile.
	if code := run([]string{"-exp", "ablation-bypass", "-faults", "burst=0.02:4"}, clock.NewVirtual()); code > 1 {
		t.Errorf("ablation-bypass under -faults exit = %d, want 0 or 1", code)
	}
}

func TestRunJSON(t *testing.T) {
	if code := run([]string{"-exp", "resilience", "-json"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-json exit = %d", code)
	}
	if code := run([]string{"-exp", "resilience", "-json", "-v"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-json -v exit = %d", code)
	}
}
