package main

import (
	"testing"

	"dnscde/internal/clock"
)

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-list exit = %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, clock.NewVirtual()); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-exp", "nope"}, clock.NewVirtual()); code != 1 {
		t.Errorf("unknown experiment exit = %d", code)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// ablation-bypass is the cheapest full experiment (three platforms).
	if code := run([]string{"-exp", "ablation-bypass"}, clock.NewVirtual()); code != 0 {
		t.Errorf("ablation-bypass exit = %d", code)
	}
}

func TestRunJSON(t *testing.T) {
	if code := run([]string{"-exp", "resilience", "-json"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-json exit = %d", code)
	}
	if code := run([]string{"-exp", "resilience", "-json", "-v"}, clock.NewVirtual()); code != 0 {
		t.Errorf("-json -v exit = %d", code)
	}
}
