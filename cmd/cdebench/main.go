// Command cdebench regenerates the tables and figures of "Counting in the
// Dark: DNS Caches Discovery and Enumeration in the Internet" (DSN 2017)
// against synthetic populations, reporting paper-published, ground-truth
// and CDE-measured values side by side.
//
// Usage:
//
//	cdebench -list
//	cdebench -exp fig4
//	cdebench -exp all -open 200 -ent 200 -isp 200 -seed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dnscde/internal/clock"
	"dnscde/internal/detpar"
	"dnscde/internal/experiments"
	"dnscde/internal/netsim"
	"dnscde/internal/scenario"
)

// jsonReport is the machine-readable form emitted with -json.
type jsonReport struct {
	ID      string `json:"id"`
	Title   string `json:"title"`
	Passed  bool   `json:"passed"`
	Elapsed string `json:"elapsed"`
	// WallMS is the experiment's wall-clock time in milliseconds and
	// Allocs its heap-allocation count (runtime Mallocs delta); together
	// they are the bench trajectory CI tracks in bench-wall.json.
	WallMS   float64          `json:"wall_ms"`
	Allocs   uint64           `json:"allocs"`
	Workers  int              `json:"workers"`
	Shards   int              `json:"shards"`
	Cost     experiments.Cost `json:"cost"`
	Checks   []jsonCheck      `json:"checks"`
	Rendered string           `json:"rendered,omitempty"`
}

// jsonCheck is one shape assertion in JSON form.
type jsonCheck struct {
	Name      string  `json:"name"`
	Paper     float64 `json:"paper"`
	Measured  float64 `json:"measured"`
	Tolerance float64 `json:"tolerance"`
	Pass      bool    `json:"pass"`
}

func main() {
	os.Exit(run(os.Args[1:], clock.Real{}))
}

// run executes the benchmark suite. The clock is injected so tests (and
// future virtual-time harnesses) can run the timing path deterministically.
func run(args []string, clk clock.Clock) int {
	fs := flag.NewFlagSet("cdebench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment id to run, or 'all'")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		seed    = fs.Int64("seed", 2017, "random seed")
		open    = fs.Int("open", 0, "open-resolver population size (0 = default)")
		ent     = fs.Int("ent", 0, "enterprise population size (0 = default)")
		isp     = fs.Int("isp", 0, "ISP population size (0 = default)")
		asJSON  = fs.Bool("json", false, "emit one JSON object per experiment instead of text")
		verbose = fs.Bool("v", false, "with -json, include the rendered text in each object")
		workers = fs.Int("workers", 0, "trial-loop worker count (0 = GOMAXPROCS); reports are byte-identical at any value")
		shards  = fs.Int("shards", 1, "event-loop lane count for the sharded simulation scheduler; reports are byte-identical at any value >= 1")
		clients = fs.Int("clients", 1_000_000, "with -exp scale: stub clients; with -exp checkpoint: cache entries")
		caches  = fs.Int("caches", 10_000, "with -exp scale or checkpoint: simulated cache population")
		faults  = fs.String("faults", "", "fault profile injected into every platform link, e.g. 'burst=0.11:4,servfail=0.02' (see the faults experiment)")

		scenarios = fs.String("scenarios", "internal/scenario/testdata/scenarios",
			"with -exp scenario or bisect: directory holding the *.scn corpus and its golden/ reports")
		update = fs.Bool("update", false, "with -exp scenario: regenerate the golden reports instead of diffing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *update && *exp != "scenario" {
		fmt.Fprintf(os.Stderr, "cdebench: -update is only valid with -exp scenario\n")
		return 2
	}
	for _, f := range []struct {
		name string
		val  int
	}{{"-clients", *clients}, {"-caches", *caches}, {"-shards", *shards}} {
		if f.val <= 0 {
			fmt.Fprintf(os.Stderr, "cdebench: %s must be >= 1, have %d\n", f.name, f.val)
			fs.Usage()
			return 2
		}
	}
	faultProfile, err := netsim.ParseFaultProfile(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdebench: -faults: %v\n", err)
		return 2
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-22s %s\n", id, experiments.Descriptions[id])
		}
		return 0
	}

	if *exp == "scenario" {
		return runScenarioConformance(context.Background(), *scenarios, *update, *asJSON)
	}
	if *exp == "bisect" {
		return runBisect(context.Background(), *scenarios, *shards, *asJSON)
	}
	if *exp == "checkpoint" {
		return runCheckpointBench(*clients, *caches, *seed, *shards, *asJSON)
	}

	cfg := experiments.Config{
		Seed:          *seed,
		OpenResolvers: *open,
		Enterprises:   *ent,
		ISPs:          *isp,
		ScaleClients:  *clients,
		ScaleCaches:   *caches,
		Workers:       *workers,
		Shards:        *shards,
		Faults:        faultProfile,
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}

	ctx := context.Background()
	enc := json.NewEncoder(os.Stdout)
	failed := 0
	for _, id := range ids {
		var memBefore runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		start := clk.Now()
		report, err := experiments.RunContext(ctx, id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdebench: %s: %v\n", id, err)
			failed++
			continue
		}
		elapsed := clk.Now().Sub(start).Round(time.Millisecond)
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		if *asJSON {
			jr := jsonReport{
				ID: report.ID, Title: report.Title,
				Passed: report.Passed(), Elapsed: elapsed.String(),
				WallMS:  float64(elapsed) / float64(time.Millisecond),
				Allocs:  memAfter.Mallocs - memBefore.Mallocs,
				Workers: detpar.Workers(cfg.Workers),
				Shards:  cfg.Shards,
				Cost:    report.Cost,
			}
			for _, c := range report.Checks {
				jr.Checks = append(jr.Checks, jsonCheck{
					Name: c.Name, Paper: c.Paper, Measured: c.Measured,
					Tolerance: c.Tolerance, Pass: c.Pass(),
				})
			}
			if *verbose {
				jr.Rendered = report.Render()
			}
			if err := enc.Encode(jr); err != nil {
				fmt.Fprintf(os.Stderr, "cdebench: encoding %s: %v\n", id, err)
				return 1
			}
		} else {
			fmt.Println(report.Render())
			fmt.Printf("(%s completed in %v)\n\n%s\n\n", id, elapsed, strings.Repeat("=", 72))
		}
		if !report.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "cdebench: %d experiment(s) failed shape checks\n", failed)
		return 1
	}
	return 0
}

// scenarioJSON is the machine-readable conformance record emitted by
// -exp scenario -json; `cdebench -exp scenario -json | tee
// conformance.json` is the artifact CI uploads.
type scenarioJSON struct {
	Scenario    string          `json:"scenario"`
	Workers     []int           `json:"workers"`
	Shards      []int           `json:"shards"`
	Invariant   bool            `json:"invariant"`
	GoldenMatch bool            `json:"golden_match"`
	Updated     bool            `json:"updated,omitempty"`
	Detail      string          `json:"detail,omitempty"`
	Report      json.RawMessage `json:"report,omitempty"`
}

// runScenarioConformance executes the scenario corpus at the default
// workers x shards sweep and diffs (or, with update, rewrites) the golden
// reports.
func runScenarioConformance(ctx context.Context, dir string, update, asJSON bool) int {
	results, err := scenario.RunConformance(ctx, dir, scenario.DefaultWorkerSweep, scenario.DefaultShardSweep, update)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdebench: scenario: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	failed := 0
	for _, res := range results {
		if !res.Passed() {
			failed++
		}
		if asJSON {
			sj := scenarioJSON{
				Scenario:    res.Scenario,
				Workers:     res.Workers,
				Shards:      res.Shards,
				Invariant:   res.Invariant,
				GoldenMatch: res.GoldenMatch,
				Updated:     res.Updated,
				Detail:      res.Detail,
				Report:      json.RawMessage(res.Report),
			}
			if err := enc.Encode(sj); err != nil {
				fmt.Fprintf(os.Stderr, "cdebench: encoding %s: %v\n", res.Scenario, err)
				return 1
			}
			continue
		}
		switch {
		case res.Updated:
			fmt.Printf("%-24s UPDATED golden (%d bytes)\n", res.Scenario, len(res.Report))
		case res.Passed():
			fmt.Printf("%-24s PASS (workers %v x shards %v invariant, golden match)\n", res.Scenario, res.Workers, res.Shards)
		default:
			fmt.Printf("%-24s FAIL %s\n", res.Scenario, res.Detail)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "cdebench: %d scenario(s) failed conformance\n", failed)
		return 1
	}
	return 0
}
