package main

import (
	"os"
	"strings"
	"testing"

	"dnscde/internal/netsim"
)

func TestRunSimAllTechniques(t *testing.T) {
	var sb strings.Builder
	if err := runSim(&sb, "all", 3, 2, 4, "random", 0.01, nil, 7, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"caches=3 ingress=2 egress=4",
		"direct enumeration (§IV-B1):     3 caches",
		"CNAME-chain bypass (§IV-B2a):    3 caches",
		"names-hierarchy bypass (§IV-B2b): 3 caches",
		"timing side channel (§IV-B3):    3 caches",
		"egress discovery (§IV-B1b):      4 egress IPs",
		"1 cluster(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSimSingleTechnique(t *testing.T) {
	var sb strings.Builder
	if err := runSim(&sb, "direct", 2, 1, 1, "round-robin", 0, nil, 1, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "direct enumeration") {
		t.Errorf("missing direct output:\n%s", out)
	}
	if strings.Contains(out, "timing side channel") {
		t.Errorf("unexpected timing output:\n%s", out)
	}
}

func TestRunSimWithFaults(t *testing.T) {
	fp, err := netsim.ParseFaultProfile("burst=0.11:4,servfail=0.05,truncate=0.05")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := runSim(&sb, "direct", 3, 1, 1, "random", 0, fp, 11, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "injected faults: burst=0.11:4,servfail=0.05,truncate=0.05") {
		t.Errorf("missing injected-faults banner:\n%s", out)
	}
	if !strings.Contains(out, "injected faults:  ") {
		t.Errorf("cost summary missing fault counters:\n%s", out)
	}
}

func TestRunFaultsFlagValidation(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"-faults", "bogus=1"}, &sb); code != 2 {
		t.Errorf("bad -faults exit = %d", code)
	}
}

func TestMakeSelector(t *testing.T) {
	for _, kind := range []string{"random", "round-robin", "hash-qname", "hash-source-ip"} {
		if _, err := makeSelector(kind, 1); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if _, err := makeSelector("bogus", 1); err == nil {
		t.Error("bogus selector accepted")
	}
}

func TestRunFlagHandling(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"-mode", "nope"}, &sb); code != 2 {
		t.Errorf("unknown mode exit = %d", code)
	}
	if code := run([]string{"-bogus-flag"}, &sb); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
	if code := run([]string{"-mode", "udp"}, &sb); code != 1 {
		t.Errorf("udp without target exit = %d", code)
	}
}

func TestRunUDPValidation(t *testing.T) {
	var sb strings.Builder
	if err := runUDP(&sb, "", "", 1, "", ""); err == nil {
		t.Error("missing flags accepted")
	}
	if err := runUDP(&sb, "not-an-addr", "a.example", 1, "", ""); err == nil {
		t.Error("bad target accepted")
	}
}

func TestRunSimSurvey(t *testing.T) {
	var sb strings.Builder
	if err := runSim(&sb, "survey", 3, 1, 2, "round-robin", 0, nil, 9, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"caches:            3", "egress IPs:        2", "traffic-dependent", "total probes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("survey output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSimTrace(t *testing.T) {
	var sb strings.Builder
	if err := runSim(&sb, "trace", 1, 1, 1, "random", 0, nil, 4, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cold resolution", "warm resolution", "cache-miss", "cache-hit", "referral"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestRunScenarioFlag(t *testing.T) {
	const scn = "../../internal/scenario/testdata/scenarios/open-resolver-1.scn"
	var a, b strings.Builder
	if code := run([]string{"-scenario", scn, "-workers", "1"}, &a); code != 0 {
		t.Fatalf("-scenario exit = %d", code)
	}
	if !strings.Contains(a.String(), `"scenario": "open-resolver-1"`) {
		t.Errorf("canonical report missing scenario name:\n%s", a.String())
	}
	if code := run([]string{"-scenario", scn, "-workers", "8"}, &b); code != 0 {
		t.Fatalf("-scenario -workers 8 exit = %d", code)
	}
	if a.String() != b.String() {
		t.Error("-scenario output differs between -workers 1 and 8")
	}
}

func TestRunScenarioMissingFile(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"-scenario", "no/such/file.scn"}, &sb); code != 2 {
		t.Errorf("missing scenario file exit = %d, want 2", code)
	}
}

func TestRunScenarioBadGrammar(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.scn"
	if err := os.WriteFile(path, []byte("$SCENARIO x\nbananas\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if code := run([]string{"-scenario", path}, &sb); code != 2 {
		t.Errorf("invalid scenario grammar exit = %d, want 2", code)
	}
}

// TestRunCheckpointRestoreFlags drives the -checkpoint / -restore-from
// pair end to end: freeze trial 0 of a scenario at its midpoint, thaw it
// in a second invocation, and the finished trial must print. A snapshot
// thawed under a different scenario must be rejected.
func TestRunCheckpointRestoreFlags(t *testing.T) {
	const scn = "../../internal/scenario/testdata/scenarios/open-resolver-4.scn"
	snap := t.TempDir() + "/trial0.snap"

	var a strings.Builder
	if code := run([]string{"-scenario", scn, "-checkpoint", snap}, &a); code != 0 {
		t.Fatalf("-checkpoint exit = %d\n%s", code, a.String())
	}
	if !strings.Contains(a.String(), "checkpoint: scenario open-resolver-4 trial 0") {
		t.Errorf("checkpoint banner missing:\n%s", a.String())
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot file not written: %v", err)
	}

	var b strings.Builder
	if code := run([]string{"-scenario", scn, "-restore-from", snap}, &b); code != 0 {
		t.Fatalf("-restore-from exit = %d\n%s", code, b.String())
	}
	for _, want := range []string{`"Scenario": "open-resolver-4"`, `"Trial": 0`, `"Workloads"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("restore output missing %s:\n%s", want, b.String())
		}
	}

	// Thawing under the wrong scenario is a config mismatch, not a crash.
	var c strings.Builder
	wrong := "../../internal/scenario/testdata/scenarios/open-resolver-1.scn"
	if code := run([]string{"-scenario", wrong, "-restore-from", snap}, &c); code != 1 {
		t.Errorf("wrong-scenario restore exit = %d, want 1", code)
	}

	// The flags require a scenario file.
	var d strings.Builder
	if code := run([]string{"-checkpoint", snap}, &d); code != 2 {
		t.Errorf("-checkpoint without -scenario exit = %d, want 2", code)
	}
}
