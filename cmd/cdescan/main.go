// Command cdescan is the CDE measurement tool: it discovers and
// enumerates the caches of a DNS resolution platform.
//
// Simulation mode (default) builds a platform with a known configuration
// and measures it end-to-end — the zero-setup demonstration:
//
//	cdescan -caches 4 -ingress 2 -egress 6 -selector random -technique all
//
// UDP mode probes a real resolver. The prober needs its own domain with
// nameservers it can observe (run cmd/cdeserver there); latency-only
// probing works without one:
//
//	cdescan -mode udp -target 192.0.2.53:53 -name www.example.com -probes 20
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"os"
	"sort"
	"strings"
	"time"

	"dnscde/internal/core"
	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/scenario"
	"dnscde/internal/simtest"
	"dnscde/internal/trace"
	"dnscde/internal/udpnet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("cdescan", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "sim", "sim or udp")
		technique = fs.String("technique", "all", "direct, chain, hierarchy, timing, mapping, egress, classify, survey, trace or all (sim mode)")
		caches    = fs.Int("caches", 4, "simulated platform cache count")
		ingress   = fs.Int("ingress", 2, "simulated platform ingress IPs")
		egress    = fs.Int("egress", 3, "simulated platform egress IPs")
		selector  = fs.String("selector", "random", "random, round-robin, hash-qname or hash-source-ip")
		loss      = fs.Float64("loss", 0.01, "simulated per-packet loss")
		faults    = fs.String("faults", "", "sim mode: fault profile for the platform link, e.g. 'burst=0.11:4,servfail=0.02,truncate=0.1'")
		seed      = fs.Int64("seed", 1, "simulation seed")
		scans     = fs.Int("scans", 1, "sim mode: independent platforms to scan (each gets a derived seed)")
		workers   = fs.Int("workers", 0, "sim mode: worker count for -scans > 1 (0 = GOMAXPROCS); output is byte-identical at any value")
		shards    = fs.Int("shards", 1, "sim mode: event-loop lane count for the sharded simulation scheduler; output is byte-identical at any value >= 1")
		scnFile   = fs.String("scenario", "", "sim mode: run a declarative scenario file (*.scn) instead of the flag-built platform; prints the canonical report")
		ckptOut   = fs.String("checkpoint", "", "sim mode with -scenario: run trial 0 to its midpoint barrier and write the world snapshot to this file")
		ckptIn    = fs.String("restore-from", "", "sim mode with -scenario: restore a snapshot written by -checkpoint and finish the trial, printing its outcome as JSON")

		target = fs.String("target", "", "udp mode: resolver address ip:port")
		name   = fs.String("name", "", "udp mode: name to probe")
		probes = fs.Int("probes", 10, "udp mode: probe count")
		server = fs.String("server", "", "udp mode: cdeserver address ip:port for control-zone readout (full enumeration)")
		ctl    = fs.String("ctl", "", "udp mode: control-zone origin, e.g. ctl.cache.example (default derived from -name's domain)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	faultProfile, err := netsim.ParseFaultProfile(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdescan: -faults: %v\n", err)
		return 2
	}
	if *shards <= 0 {
		fmt.Fprintf(os.Stderr, "cdescan: -shards must be >= 1, have %d\n", *shards)
		fs.Usage()
		return 2
	}
	if (*ckptOut != "" || *ckptIn != "") && *scnFile == "" {
		fmt.Fprintf(os.Stderr, "cdescan: -checkpoint and -restore-from require -scenario\n")
		fs.Usage()
		return 2
	}
	switch *mode {
	case "sim":
		if *scnFile != "" {
			sc, err := scenario.LoadFile(*scnFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cdescan: %v\n", err)
				return 2
			}
			var runErr error
			switch {
			case *ckptOut != "":
				runErr = writeCheckpoint(out, sc, *ckptOut, *shards)
			case *ckptIn != "":
				runErr = restoreCheckpoint(out, sc, *ckptIn, *shards)
			default:
				runErr = runScenario(out, sc, *workers, *shards)
			}
			if runErr != nil {
				fmt.Fprintf(os.Stderr, "cdescan: %v\n", runErr)
				return 1
			}
			return 0
		}
		if err := runSims(out, *technique, *caches, *ingress, *egress, *selector, *loss, faultProfile, *seed, *scans, *workers, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "cdescan: %v\n", err)
			return 1
		}
	case "udp":
		if err := runUDP(out, *target, *name, *probes, *server, *ctl); err != nil {
			fmt.Fprintf(os.Stderr, "cdescan: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "cdescan: unknown mode %q\n", *mode)
		return 2
	}
	return 0
}

// runScenario executes a declarative scenario (internal/scenario) and
// prints its canonical JSON report — the same bytes the conformance
// harness diffs against the goldens.
func runScenario(out io.Writer, sc *scenario.Scenario, workers, shards int) error {
	report, err := scenario.Run(context.Background(), sc, scenario.RunOptions{Workers: workers, Shards: shards})
	if err != nil {
		return err
	}
	b, err := report.CanonicalJSON()
	if err != nil {
		return err
	}
	_, err = out.Write(b)
	return err
}

// writeCheckpoint runs the scenario's first trial up to its midpoint
// workload barrier and writes the frozen world snapshot to path. The
// snapshot is self-describing: -restore-from needs only the same
// scenario file to finish the trial.
func writeCheckpoint(out io.Writer, sc *scenario.Scenario, path string, shards int) error {
	barrier := sc.MidpointBarrier()
	snap, err := scenario.CheckpointTrial(context.Background(), sc, 0, barrier, shards)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, snap, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "checkpoint: scenario %s trial 0 frozen at workload barrier %d/%d (%d bytes) -> %s\n",
		sc.Name, barrier, len(sc.Workloads), len(snap), path)
	return nil
}

// restoreCheckpoint thaws a snapshot written by -checkpoint, runs the
// remaining workloads and prints the finished trial as JSON — the same
// detail a straight-through run of that trial would report.
func restoreCheckpoint(out io.Writer, sc *scenario.Scenario, path string, shards int) error {
	snap, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	detail, trial, err := scenario.ResumeTrial(context.Background(), sc, snap, shards)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(struct {
		Scenario string
		Trial    int
		Detail   scenario.TrialDetail
	}{sc.Name, trial, detail}, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", b)
	return err
}

func makeSelector(kind string, seed int64) (loadbal.Selector, error) {
	switch kind {
	case "random":
		return loadbal.NewRandom(seed), nil
	case "round-robin":
		return loadbal.NewRoundRobin(), nil
	case "hash-qname":
		return loadbal.HashQName{}, nil
	case "hash-source-ip":
		return loadbal.HashSourceIP{}, nil
	default:
		return nil, fmt.Errorf("unknown selector %q", kind)
	}
}

// runSims scans one or more independent simulated platforms. With
// -scans > 1 each scan owns a full world seeded from the detpar stream
// and runs on a bounded worker pool; outputs are merged in scan order,
// so the combined report is byte-identical at any -workers value.
func runSims(out io.Writer, technique string, caches, ingress, egress int, selector string, loss float64, faults *netsim.FaultProfile, seed int64, scans, workers, shards int) error {
	if scans <= 1 {
		return runSim(out, technique, caches, ingress, egress, selector, loss, faults, seed, shards)
	}
	outputs, err := detpar.Map(context.Background(), seed, scans, workers,
		func(i int, rng *rand.Rand) (string, error) {
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "--- scan %d/%d ---\n", i+1, scans)
			if err := runSim(&buf, technique, caches, ingress, egress, selector, loss, faults, rng.Int63(), shards); err != nil {
				return "", fmt.Errorf("scan %d: %w", i+1, err)
			}
			return buf.String(), nil
		})
	if err != nil {
		return err
	}
	for _, s := range outputs {
		fmt.Fprint(out, s)
	}
	return nil
}

func runSim(out io.Writer, technique string, caches, ingress, egress int, selector string, loss float64, faults *netsim.FaultProfile, seed int64, shards int) (err error) {
	sel, err := makeSelector(selector, seed)
	if err != nil {
		return err
	}
	reg := metrics.New()
	w, err := simtest.New(simtest.Options{Seed: seed, Metrics: reg, Shards: shards})
	if err != nil {
		return err
	}
	// Every run ends with what it cost, whichever technique path it took.
	defer func() {
		if err == nil {
			printCostSummary(out, reg.Snapshot())
		}
	}()
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "target", Caches: caches, Ingress: ingress, Egress: egress, Seed: seed,
		Profile: netsim.LinkProfile{OneWay: 2 * time.Millisecond, Jitter: time.Millisecond, Loss: loss, Faults: faults},
		Mutate:  func(c *platform.Config) { c.Selector = sel },
	})
	if err != nil {
		return err
	}
	gt := plat.GroundTruth()
	fmt.Fprintf(out, "target platform: caches=%d ingress=%d egress=%d selector=%s loss=%.1f%%\n",
		gt.Caches, gt.IngressIPs, gt.EgressIPs, gt.Selector, loss*100)
	if faults != nil {
		fmt.Fprintf(out, "injected faults: %s\n", faults)
	}
	fmt.Fprintln(out)

	// The whole technique sweep is one sequential probe flow; on a sharded
	// world (-shards >= 1) RunSequenced rides it on the event-loop lanes,
	// with byte-identical output.
	return w.RunSequenced(context.Background(), func(ctx context.Context) error {
		return scanTechniques(ctx, out, w, plat, technique, loss)
	})
}

// scanTechniques runs the selected technique(s) against the platform.
func scanTechniques(ctx context.Context, out io.Writer, w *simtest.World, plat *platform.Platform, technique string, loss float64) error {
	ingressIP := plat.Config().IngressIPs[0]
	prober := w.DirectProber(ingressIP)
	k := core.CarpetBombingFactor(1-(1-loss)*(1-loss), 0.99)

	runAll := technique == "all"
	if runAll || technique == "direct" {
		res, err := core.EnumerateDirect(ctx, prober, w.Infra, core.EnumOptions{Replicates: k})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "direct enumeration (§IV-B1):     %d caches  (%d probes, %d lost)\n",
			res.Caches, res.ProbesSent, res.ProbeErrors)
	}
	if runAll || technique == "chain" {
		indirect := core.NewIndirectProber(w.NewStub(ingressIP))
		res, err := core.EnumerateChain(ctx, indirect, w.Infra, core.EnumOptions{Replicates: k})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "CNAME-chain bypass (§IV-B2a):    %d caches  (%d probes, %d lost)\n",
			res.Caches, res.ProbesSent, res.ProbeErrors)
	}
	if runAll || technique == "hierarchy" {
		indirect := core.NewIndirectProber(w.NewStub(ingressIP))
		res, err := core.EnumerateHierarchy(ctx, indirect, w.Infra, core.EnumOptions{Replicates: k})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "names-hierarchy bypass (§IV-B2b): %d caches  (%d probes, %d lost)\n",
			res.Caches, res.ProbesSent, res.ProbeErrors)
	}
	if runAll || technique == "timing" {
		res, err := core.EnumerateTimingDirect(ctx, prober, w.Infra, core.TimingOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "timing side channel (§IV-B3):    %d caches  (threshold %v)\n",
			res.Caches, res.Threshold)
	}
	if runAll || technique == "egress" {
		res, err := core.DiscoverEgressAdaptive(ctx, prober, w.Infra, 32, 4096)
		if err != nil {
			return err
		}
		sort.Slice(res.IPs, func(i, j int) bool { return res.IPs[i].Less(res.IPs[j]) })
		fmt.Fprintf(out, "egress discovery (§IV-B1b):      %d egress IPs: %v\n", len(res.IPs), res.IPs)
	}
	if technique == "trace" {
		session, err := w.Infra.NewHierarchySession(1)
		if err != nil {
			return err
		}
		for round, label := range []string{"cold", "warm"} {
			tr := trace.New()
			tctx := trace.With(ctx, tr)
			conn := w.Net.Bind(w.NextClientAddr())
			if _, _, err := conn.Exchange(tctx, dnswire.NewQuery(uint16(round+1), session.ProbeName(1), dnswire.TypeA), ingressIP); err != nil {
				return err
			}
			fmt.Fprintf(out, "%s resolution of %s:\n%s\n", label, session.ProbeName(1), tr)
		}
		return nil
	}
	if technique == "survey" {
		extras := make([]core.Prober, 0, 16)
		for i := 0; i < 16; i++ {
			extras = append(extras, w.DirectProber(ingressIP))
		}
		survey, err := core.SurveyPlatform(ctx, prober, w.Infra, core.SurveyOptions{ExtraVantages: extras})
		if err != nil {
			return err
		}
		fmt.Fprint(out, survey.Render())
		return nil
	}
	if runAll || technique == "classify" {
		extras := make([]core.Prober, 0, 16)
		for i := 0; i < 16; i++ {
			extras = append(extras, w.DirectProber(ingressIP))
		}
		res, err := core.ClassifySelection(ctx, prober, w.Infra, core.ClassifyOptions{ExtraVantages: extras})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "selection classifier (future work): %s (ω_distinct=%d, ω_identical=%d, sequential %d/%d)\n",
			res.Class, res.Caches, res.IdenticalKeyCaches, res.SequentialRuns, res.Runs)
	}
	if runAll || technique == "mapping" {
		res, err := core.MapIngressClusters(ctx, w.Infra, plat.Config().IngressIPs,
			func(ip netip.Addr) core.Prober { return w.DirectProber(ip) }, core.MappingOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "ingress→cache clusters (§IV-B1b): %d cluster(s)\n", len(res.Clusters))
		for i, cluster := range res.Clusters {
			fmt.Fprintf(out, "  cluster %d: %v\n", i, cluster)
		}
	}
	return nil
}

// printCostSummary reports what a simulation run spent, read from the
// probe-cost accounting registry rather than per-technique bookkeeping.
func printCostSummary(out io.Writer, snap metrics.Snapshot) {
	fmt.Fprintf(out, "\ncost summary (internal/metrics):\n")
	fmt.Fprintf(out, "  probes sent:      %d (%d errors)\n",
		snap.Counter("core.probes.sent"), snap.Counter("core.probes.errors"))
	fmt.Fprintf(out, "  packets on wire:  %d sent, %d recvd, %d lost, %d retried\n",
		snap.Counter("netsim.packets.sent"), snap.Counter("netsim.packets.recvd"),
		snap.Counter("netsim.packets.lost"), snap.Counter("netsim.retries"))
	fmt.Fprintf(out, "  platform caches:  %d hits, %d misses, %d expired\n",
		snap.Total("dnscache.hits"), snap.Total("dnscache.misses"), snap.Total("dnscache.expired"))
	fmt.Fprintf(out, "  authns arrivals:  %d queries\n", snap.Counter("authns.queries"))
	injected := snap.Counter("netsim.faults.servfail") + snap.Counter("netsim.faults.refused") +
		snap.Counter("netsim.faults.truncated") + snap.Counter("netsim.faults.duplicated") +
		snap.Counter("netsim.faults.late") + snap.Counter("netsim.faults.outage")
	if injected > 0 {
		fmt.Fprintf(out, "  injected faults:  %d servfail, %d refused, %d truncated, %d duplicated, %d late, %d outage\n",
			snap.Counter("netsim.faults.servfail"), snap.Counter("netsim.faults.refused"),
			snap.Counter("netsim.faults.truncated"), snap.Counter("netsim.faults.duplicated"),
			snap.Counter("netsim.faults.late"), snap.Counter("netsim.faults.outage"))
	}
}

func runUDP(out io.Writer, target, name string, probes int, server, ctl string) error {
	if target == "" || name == "" {
		return fmt.Errorf("udp mode requires -target and -name")
	}
	addrPort, err := netip.ParseAddrPort(target)
	if err != nil {
		return fmt.Errorf("parsing -target: %w", err)
	}
	tr := &udpnet.Transport{Port: addrPort.Port()}
	ctx := context.Background()

	fmt.Fprintf(out, "probing %v for %s (%d probes)\n", addrPort, name, probes)
	var rtts []time.Duration
	for i := 0; i < probes; i++ {
		query := dnswire.NewQuery(uint16(i+1), name, dnswire.TypeA)
		resp, rtt, err := tr.Exchange(ctx, query, addrPort.Addr())
		if err != nil {
			fmt.Fprintf(out, "  probe %2d: %v\n", i+1, err)
			continue
		}
		rtts = append(rtts, rtt)
		fmt.Fprintf(out, "  probe %2d: %-8v %s\n", i+1, rtt.Round(time.Microsecond), resp.Summary())
	}
	if len(rtts) == 0 {
		return fmt.Errorf("no responses from %v", addrPort)
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	fmt.Fprintf(out, "\nlatency: min=%v median=%v max=%v\n",
		rtts[0], rtts[len(rtts)/2], rtts[len(rtts)-1])

	if server == "" {
		fmt.Fprintln(out, strings.TrimSpace(`
The latency split between the fastest (cached) and slowest (cache-miss)
responses is the §IV-B3 signal; add -server (a cdeserver with its control
zone) to read ω directly and finish the enumeration.`))
		return nil
	}
	return readControl(out, server, ctl, name)
}

// readControl fetches ω and the egress sources from a cdeserver's DNS
// control zone (§IV-B1 counting, performed remotely).
func readControl(out io.Writer, server, ctl, name string) error {
	srvAddr, err := netip.ParseAddrPort(server)
	if err != nil {
		return fmt.Errorf("parsing -server: %w", err)
	}
	if ctl == "" {
		// Derive ctl.<registrable domain> from the probe name's last two
		// labels: name.cache.example → ctl.cache.example.
		labels := strings.Split(strings.TrimSuffix(dnswire.CanonicalName(name), "."), ".")
		if len(labels) < 2 {
			return fmt.Errorf("cannot derive -ctl from %q; pass it explicitly", name)
		}
		ctl = "ctl." + strings.Join(labels[len(labels)-2:], ".")
	}
	ctl = dnswire.CanonicalName(ctl)
	// Egress readouts can list many addresses; fall back to TCP on
	// truncation.
	tr := &udpnet.Transport{Port: srvAddr.Port(), FallbackTCP: true}
	ctx := context.Background()

	fetch := func(ctlName string) ([]string, error) {
		resp, _, err := tr.Exchange(ctx, dnswire.NewQuery(1, ctlName, dnswire.TypeTXT), srvAddr.Addr())
		if err != nil {
			return nil, err
		}
		if len(resp.Answer) == 0 {
			return nil, fmt.Errorf("control query %s: %s", ctlName, resp.Summary())
		}
		txt, ok := resp.Answer[0].Data.(dnswire.TXTRecord)
		if !ok {
			return nil, fmt.Errorf("control query %s: unexpected %T", ctlName, resp.Answer[0].Data)
		}
		return txt.Strings, nil
	}

	counts, err := fetch("count." + dnswire.CanonicalName(name) + ctl)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\ncontrol-zone readout from %v:\n", srvAddr)
	fmt.Fprintf(out, "  ω (queries for %s at the nameserver): %s caches\n", name, counts[0])
	if egress, err := fetch("egress." + dnswire.CanonicalName(name) + ctl); err == nil {
		fmt.Fprintf(out, "  egress IPs observed: %s %v\n", egress[0], egress[1:])
	}
	return nil
}
