package main

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/udpnet"
)

// TestUDPEndToEndEnumeration runs the complete remote measurement loop
// over real loopback UDP: the target platform and the CDE nameserver are
// both exposed on sockets; cdescan probes the resolver, then reads ω and
// the egress sources from the nameserver's DNS control zone.
func TestUDPEndToEndEnumeration(t *testing.T) {
	w := simtest.MustNew(simtest.Options{Seed: 61})
	const n = 3
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "udp-target", Caches: n,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(2) },
	})
	if err != nil {
		t.Fatal(err)
	}
	session, err := w.Infra.NewFlatSession()
	if err != nil {
		t.Fatal(err)
	}
	w.Infra.Parent.EnableControlZone("ctl.cache.example.")

	// Expose the platform (resolver) and the CDE parent nameserver on
	// loopback UDP. The platform's upstream path stays in-process, but
	// the prober's packets and the control readout travel over sockets.
	resolverSrv := udpnet.NewServer(plat)
	resolverAddr, err := resolverSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	nsSrv := udpnet.NewServer(w.Infra.Parent)
	nsAddr, err := nsSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, srv := range []*udpnet.Server{resolverSrv, nsSrv} {
		wg.Add(1)
		go func(s *udpnet.Server) {
			defer wg.Done()
			_ = s.Serve(ctx)
		}(srv)
	}
	defer func() {
		cancel()
		resolverSrv.Close()
		nsSrv.Close()
		wg.Wait()
	}()

	var sb strings.Builder
	err = runUDP(&sb, resolverAddr.String(), session.Honey, 25, nsAddr.String(), "ctl.cache.example")
	if err != nil {
		t.Fatalf("runUDP: %v\n%s", err, sb.String())
	}
	out := sb.String()
	want := fmt.Sprintf("at the nameserver): %d caches", n)
	if !strings.Contains(out, want) {
		t.Errorf("output missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "egress IPs observed: 1") {
		t.Errorf("output missing egress readout:\n%s", out)
	}
}
