package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dnscde/internal/campaign"
	"dnscde/internal/clock"
)

// syncBuffer is a goroutine-safe bytes.Buffer: run()'s summarize loop and
// deferred summary write concurrently with test assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// serverProc drives one run() invocation on goroutine.
type serverProc struct {
	stdout *syncBuffer
	stderr *syncBuffer
	exit   chan int
}

func startServer(t *testing.T, args ...string) *serverProc {
	t.Helper()
	p := &serverProc{stdout: &syncBuffer{}, stderr: &syncBuffer{}, exit: make(chan int, 1)}
	go func() {
		p.exit <- run(args, clock.NewVirtual(), p.stdout, p.stderr)
	}()
	return p
}

// waitOutput polls stdout until re matches, returning the first match's
// submatches.
func (p *serverProc) waitOutput(t *testing.T, re *regexp.Regexp) []string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := re.FindStringSubmatch(p.stdout.String()); m != nil {
			return m
		}
		select {
		case code := <-p.exit:
			t.Fatalf("server exited %d before %q matched\nstdout:\n%s\nstderr:\n%s",
				code, re, p.stdout.String(), p.stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %q\nstdout:\n%s\nstderr:\n%s", re, p.stdout.String(), p.stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitExit blocks for run()'s exit code.
func (p *serverProc) waitExit(t *testing.T) int {
	t.Helper()
	select {
	case code := <-p.exit:
		return code
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not exit\nstdout:\n%s\nstderr:\n%s", p.stdout.String(), p.stderr.String())
		return -1
	}
}

var (
	listeningRE = regexp.MustCompile(`listening on ([0-9.]+:[0-9]+) \(udp\+tcp\)`)
	apiRE       = regexp.MustCompile(`campaign API on http://([0-9.]+:[0-9]+)/campaigns`)
)

// assertReleased proves both the UDP and TCP sides of addr are free.
func assertReleased(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		uc, uerr := net.ListenPacket("udp", addr)
		if uerr == nil {
			uc.Close()
			tl, terr := net.Listen("tcp", addr)
			if terr == nil {
				tl.Close()
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("listeners on %s not released", addr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunSignalExitsZeroWithSummary(t *testing.T) {
	p := startServer(t, "-addr", "127.0.0.1:0", "-generate", "cache.example", "-probes", "2", "-log-every", "0")
	m := p.waitOutput(t, listeningRE)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p.waitExit(t); code != 0 {
		t.Errorf("exit = %d, want 0\nstderr:\n%s", code, p.stderr.String())
	}
	out := p.stdout.String()
	if !strings.Contains(out, "shutting down: signal received") {
		t.Errorf("no shutdown banner:\n%s", out)
	}
	if !strings.Contains(out, "final query log:") {
		t.Errorf("no final summary after signal:\n%s", out)
	}
	assertReleased(t, m[1])
}

func TestRunTCPBindFailureReleasesUDP(t *testing.T) {
	// Occupy a TCP port whose UDP side is free: the server binds UDP,
	// fails on TCP, and must exit 1 with the UDP socket released and the
	// summary printed.
	tl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	addr := tl.Addr().String()

	p := startServer(t, "-addr", addr, "-generate", "cache.example", "-probes", "2", "-log-every", "0")
	if code := p.waitExit(t); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(p.stderr.String(), "tcp") {
		t.Errorf("stderr missing tcp bind error:\n%s", p.stderr.String())
	}
	if !strings.Contains(p.stdout.String(), "final query log:") {
		t.Errorf("no final summary on tcp bind failure:\n%s", p.stdout.String())
	}
	uc, err := net.ListenPacket("udp", addr)
	if err != nil {
		t.Fatalf("UDP socket leaked after tcp bind failure: %v", err)
	}
	uc.Close()
}

func TestRunMetricsBindFailureReleasesListeners(t *testing.T) {
	// Occupy the metrics port so serveMetrics fails after both DNS
	// listeners bound: the old code leaked them on this path.
	busy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()

	p := startServer(t, "-addr", "127.0.0.1:0", "-generate", "cache.example", "-probes", "2",
		"-log-every", "0", "-metrics", busy.Addr().String())
	if code := p.waitExit(t); code != 1 {
		t.Errorf("exit = %d, want 1\nstderr:\n%s", code, p.stderr.String())
	}
	if !strings.Contains(p.stderr.String(), "metrics") {
		t.Errorf("stderr missing metrics error:\n%s", p.stderr.String())
	}
	out := p.stdout.String()
	if !strings.Contains(out, "final query log:") {
		t.Errorf("no final summary on metrics bind failure:\n%s", out)
	}
	m := listeningRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no listening banner:\n%s", out)
	}
	assertReleased(t, m[1])
}

func TestWaitServe(t *testing.T) {
	tests := []struct {
		name     string
		signal   bool
		serveErr error
		want     int
		wantOut  string
		wantErr  string
	}{
		{name: "signal", signal: true, want: 0, wantOut: "shutting down"},
		{name: "serve error", serveErr: errors.New("udpnet: read: boom"), want: 1, wantErr: "boom"},
		{name: "clean serve return", serveErr: nil, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			errc := make(chan error, 1)
			if tt.signal {
				cancel()
			} else {
				errc <- tt.serveErr
			}
			var out, errOut bytes.Buffer
			if got := waitServe(ctx, errc, &out, &errOut); got != tt.want {
				t.Errorf("waitServe = %d, want %d", got, tt.want)
			}
			if !strings.Contains(out.String(), tt.wantOut) {
				t.Errorf("stdout = %q, want %q", out.String(), tt.wantOut)
			}
			if !strings.Contains(errOut.String(), tt.wantErr) {
				t.Errorf("stderr = %q, want %q", errOut.String(), tt.wantErr)
			}
		})
	}
}

// TestRunCampaignEndToEnd drives the whole control plane through a live
// server: submit, poll to completion, stream results, cancel a parked
// campaign, then SIGTERM and assert the graceful drain.
func TestRunCampaignEndToEnd(t *testing.T) {
	results := t.TempDir()
	p := startServer(t, "-addr", "127.0.0.1:0", "-generate", "cache.example", "-probes", "2",
		"-log-every", "0", "-api", "127.0.0.1:0", "-results", results)
	dns := p.waitOutput(t, listeningRE)
	api := "http://" + p.waitOutput(t, apiRE)[1]

	spec := `$SCENARIO e2e
$SEED 3
$TRIALS 2

campaign (
    ticks 3
    max-concurrent 2
)

platform target (
    caches 2
)

workload direct (
    queries 8
)
`
	resp, err := http.Post(api+"/campaigns", "text/plain", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	var prog campaign.Progress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Poll progress to completion.
	deadline := time.Now().Add(30 * time.Second)
	for !prog.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck: %+v", prog)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err = http.Get(api + "/campaigns/" + prog.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if prog.State != campaign.StateDone || prog.Completed != 3 {
		t.Fatalf("campaign = %+v, want done 3/3", prog)
	}

	// Stream the JSONL rows.
	resp, err = http.Get(api + "/campaigns/" + prog.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row campaign.Row
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad row %q: %v", sc.Text(), err)
		}
		rows++
	}
	resp.Body.Close()
	if rows != 3*2 {
		t.Errorf("streamed %d rows, want 6", rows)
	}

	// Cancel a parked campaign via DELETE.
	parked := strings.Replace(spec, "ticks 3", "ticks 100\n    interval 1h", 1)
	resp, err = http.Post(api+"/campaigns", "text/plain", strings.NewReader(parked))
	if err != nil {
		t.Fatal(err)
	}
	var parkedProg campaign.Progress
	if err := json.NewDecoder(resp.Body).Decode(&parkedProg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, api+"/campaigns/"+parkedProg.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}

	// SIGTERM: graceful drain, exit 0, summary, everything released.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p.waitExit(t); code != 0 {
		t.Errorf("exit = %d, want 0\nstderr:\n%s", code, p.stderr.String())
	}
	if !strings.Contains(p.stdout.String(), "final query log:") {
		t.Errorf("no final summary:\n%s", p.stdout.String())
	}
	assertReleased(t, dns[1])

	// The campaign API socket is released too.
	apiAddr := strings.TrimPrefix(api, "http://")
	ln, err := net.Listen("tcp", apiAddr)
	if err != nil {
		t.Fatalf("campaign API port not released: %v", err)
	}
	ln.Close()

	// Result files survive shutdown in the -results dir.
	entries, err := os.ReadDir(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("results dir has %d files, want 2", len(entries))
	}
}

// getProgress polls one campaign's progress over the HTTP API.
func getProgress(t *testing.T, api, id string) campaign.Progress {
	t.Helper()
	resp, err := http.Get(api + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var prog campaign.Progress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestRunCampaignResumeAfterSIGTERM is the process-level resume check:
// a campaign submitted over the HTTP API is interrupted by SIGTERM
// mid-flight, a second server over the same -results directory picks it
// up from its checkpoint, and the completed result file is
// byte-identical to an uninterrupted run's.
func TestRunCampaignResumeAfterSIGTERM(t *testing.T) {
	spec := `$SCENARIO srv-resume
$SEED 11
$TRIALS 2

campaign (
    ticks 3
    max-concurrent 1
    interval 300ms
)

platform target (
    caches 3
)

workload direct (
    queries 8
)
`
	// Uninterrupted baseline straight through the engine: both engines
	// assign the first campaign the same ID, so the row streams are
	// comparable byte for byte.
	eng, err := campaign.NewEngine(campaign.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := eng.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ca.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	baseline, err := os.ReadFile(ca.Path())
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()

	// First server: submit, wait for the first run to land durably, then
	// SIGTERM inside the 300ms launch-interval window.
	results := t.TempDir()
	p := startServer(t, "-addr", "127.0.0.1:0", "-generate", "cache.example", "-probes", "2",
		"-log-every", "0", "-api", "127.0.0.1:0", "-results", results)
	api := "http://" + p.waitOutput(t, apiRE)[1]
	resp, err := http.Post(api+"/campaigns", "text/plain", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	var prog campaign.Progress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(20 * time.Second)
	for prog.Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("first run never completed: %+v", prog)
		}
		time.Sleep(2 * time.Millisecond)
		prog = getProgress(t, api, prog.ID)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p.waitExit(t); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, p.stderr.String())
	}
	ckpt := filepath.Join(results, prog.ID+campaign.CheckpointExt)
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("SIGTERM did not leave a checkpoint: %v", err)
	}
	partial, err := os.ReadFile(filepath.Join(results, prog.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || len(partial) >= len(baseline) {
		t.Fatalf("partial result file is %d bytes, want (0, %d)", len(partial), len(baseline))
	}

	// Second server over the same results directory resumes the campaign
	// before serving and runs it to completion.
	p2 := startServer(t, "-addr", "127.0.0.1:0", "-generate", "cache.example", "-probes", "2",
		"-log-every", "0", "-api", "127.0.0.1:0", "-results", results)
	p2.waitOutput(t, regexp.MustCompile(`resumed 1 interrupted campaign`))
	api2 := "http://" + p2.waitOutput(t, apiRE)[1]
	final := getProgress(t, api2, prog.ID)
	for !final.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("resumed campaign stuck: %+v", final)
		}
		time.Sleep(10 * time.Millisecond)
		final = getProgress(t, api2, prog.ID)
	}
	if final.State != campaign.StateDone || final.Completed != 3 || final.Failed != 0 {
		t.Fatalf("resumed campaign = %+v, want done 3/0", final)
	}
	got, err := os.ReadFile(filepath.Join(results, prog.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, baseline) {
		t.Errorf("resumed result file differs from uninterrupted run:\n got: %s\nwant: %s", got, baseline)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint survived campaign completion: %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p2.waitExit(t); code != 0 {
		t.Errorf("second server exit = %d, want 0\nstderr:\n%s", code, p2.stderr.String())
	}
}
