// Command cdeserver runs the CDE authoritative nameserver infrastructure
// over UDP: it serves prober-controlled zones (from RFC 1035 master files
// or a generated cache.example setup) and prints the query log — the
// observation point of every CDE technique.
//
// Usage:
//
//	cdeserver -addr 0.0.0.0:5353 -zone parent.zone -zone child.zone
//	cdeserver -addr 127.0.0.1:5353 -generate cache.example -probes 50
//
// With -generate the server synthesises the paper's two-zone setup (a
// parent with a delegated sub zone and CNAME-chain aliases) so a scan can
// start without hand-written zone files.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dnscde/internal/authns"
	"dnscde/internal/clock"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/udpnet"
	"dnscde/internal/zone"
)

// zoneList collects repeated -zone flags.
type zoneList []string

func (z *zoneList) String() string { return strings.Join(*z, ",") }

// Set implements flag.Value.
func (z *zoneList) Set(v string) error {
	*z = append(*z, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], clock.Real{}))
}

// run starts the server. The clock stamping log summaries is injected so
// tests can drive the logging path on virtual time.
func run(args []string, clk clock.Clock) int {
	fs := flag.NewFlagSet("cdeserver", flag.ContinueOnError)
	var zones zoneList
	fs.Var(&zones, "zone", "zone master file to serve (repeatable)")
	var (
		addr     = fs.String("addr", "127.0.0.1:5353", "UDP listen address")
		generate = fs.String("generate", "", "generate the paper's CDE zones under this origin instead of loading files")
		probeQ   = fs.Int("probes", 50, "number of probe records when generating zones")
		logEvery = fs.Duration("log-every", 10*time.Second, "interval for query-log summaries")
		dump     = fs.Bool("dump", false, "print the zones as master files and exit (use with -generate to export)")
		ctl      = fs.String("ctl", "", "enable the DNS control zone under this origin (e.g. ctl.cache.example)")
		mAddr    = fs.String("metrics", "", "HTTP address exporting the accounting snapshot as JSON (e.g. 127.0.0.1:9153); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *generate != "" && *ctl == "" {
		*ctl = "ctl." + *generate
	}

	loaded, err := loadZones(zones, *generate, *probeQ, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdeserver: %v\n", err)
		return 1
	}
	if *dump {
		for _, z := range loaded {
			fmt.Printf("; zone %s (%d records)\n%s\n", z.Origin(), z.Len(), z.Format())
		}
		return 0
	}
	var opts []authns.Option
	if *ctl != "" {
		opts = append(opts, authns.WithControlZone(*ctl))
		fmt.Printf("control zone enabled: count.<name>.%s / egress.<suffix>.%s (TXT)\n", *ctl, *ctl)
	}
	reg := metrics.New()
	opts = append(opts, authns.WithMetrics(reg))
	srv := authns.NewServer(loaded, opts...)
	udp := udpnet.NewServer(srv)
	bound, err := udp.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdeserver: %v\n", err)
		return 1
	}
	// TCP on the same port for oversize (truncated) responses.
	tcp := udpnet.NewTCPServer(srv)
	if _, err := tcp.Listen(bound.String()); err != nil {
		fmt.Fprintf(os.Stderr, "cdeserver: tcp: %v\n", err)
		return 1
	}
	for _, z := range loaded {
		fmt.Printf("serving %-28s (%d records)\n", z.Origin(), z.Len())
	}
	fmt.Printf("listening on %v (udp+tcp)\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *mAddr != "" {
		maddr, err := serveMetrics(ctx, reg, *mAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdeserver: metrics: %v\n", err)
			return 1
		}
		fmt.Printf("metrics snapshot on http://%v/metrics\n", maddr)
	}

	go summarize(ctx, srv, *logEvery, clk)
	go func() {
		if err := tcp.Serve(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "cdeserver: tcp: %v\n", err)
		}
	}()
	if err := udp.Serve(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "cdeserver: %v\n", err)
		return 1
	}
	tcp.Close()
	printSummary(srv)
	return 0
}

// loadZones parses master files, or generates the CDE zone pair.
func loadZones(files zoneList, generate string, probeQ int, addr string) ([]*zone.Zone, error) {
	if generate != "" {
		host, err := netip.ParseAddrPort(expandAddr(addr))
		if err != nil {
			return nil, fmt.Errorf("parsing -addr: %w", err)
		}
		self := host.Addr()
		target := netsim.MustAddr("192.0.2.80")
		hier, err := zone.BuildHierarchy(generate, probeQ, target, self, self, 300)
		if err != nil {
			return nil, err
		}
		chain, err := zone.BuildCNAMEChain("chain."+generate, probeQ, target, self, 300)
		if err != nil {
			return nil, err
		}
		return []*zone.Zone{hier.Parent, hier.Child, chain}, nil
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no zones: pass -zone files or -generate origin")
	}
	out := make([]*zone.Zone, 0, len(files))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		z, parseErr := zone.Parse(f, "")
		closeErr := f.Close()
		if parseErr != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, parseErr)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		if err := z.Validate(); err != nil {
			return nil, fmt.Errorf("zone %s: %w", path, err)
		}
		out = append(out, z)
	}
	return out, nil
}

// expandAddr turns ":5353" into "0.0.0.0:5353" so it parses as AddrPort.
func expandAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "0.0.0.0" + addr
	}
	return addr
}

// serveMetrics exports the accounting registry over HTTP, expvar-style:
// GET /metrics returns the full snapshot as JSON. The listener closes
// when ctx is cancelled; the bound address is returned so callers (and
// tests using port 0) know where it landed.
func serveMetrics(ctx context.Context, reg *metrics.Registry, addr string) (net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		hs.Close()
	}()
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "cdeserver: metrics: %v\n", err)
		}
	}()
	return ln.Addr(), nil
}

// summarize prints the query-log state periodically. Timestamps come from
// the injected clock; only the flush cadence itself is wall-clock.
func summarize(ctx context.Context, srv *authns.Server, every time.Duration, clk clock.Clock) {
	if every <= 0 {
		return
	}
	//cdelint:allow walltime the periodic flush cadence of a live server is wall-clock by design
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	last := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			n := srv.Log().Len()
			if n != last {
				fmt.Printf("[%s] %d queries observed (%d distinct sources)\n",
					clk.Now().Format(time.TimeOnly), n, len(srv.Log().DistinctSources("")))
				last = n
			}
		}
	}
}

// printSummary dumps the final log statistics on shutdown.
func printSummary(srv *authns.Server) {
	log := srv.Log()
	fmt.Printf("\nfinal query log: %d queries\n", log.Len())
	byType := log.CountByType("")
	for t, c := range byType {
		fmt.Printf("  %-6v %d\n", t, c)
	}
	fmt.Printf("distinct sources (egress IPs): %v\n", log.DistinctSources(""))
}
