// Command cdeserver runs the CDE authoritative nameserver infrastructure
// over UDP: it serves prober-controlled zones (from RFC 1035 master files
// or a generated cache.example setup) and prints the query log — the
// observation point of every CDE technique. With -api it also hosts the
// campaign engine: an HTTP control plane that schedules scenario files as
// standing measurement campaigns (see internal/campaign and DESIGN.md §13).
//
// Usage:
//
//	cdeserver -addr 0.0.0.0:5353 -zone parent.zone -zone child.zone
//	cdeserver -addr 127.0.0.1:5353 -generate cache.example -probes 50
//	cdeserver -generate cache.example -api 127.0.0.1:8080 -results ./campaigns
//
// With -generate the server synthesises the paper's two-zone setup (a
// parent with a delegated sub zone and CNAME-chain aliases) so a scan can
// start without hand-written zone files.
//
// Shutdown: SIGINT/SIGTERM drains gracefully — the campaign API stops
// accepting work, in-flight campaign runs finish (bounded by -drain),
// HTTP servers shut down without aborting in-flight requests, both DNS
// listeners close, and the final query-log summary prints. Every exit
// path after the listeners bind releases them.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dnscde/internal/authns"
	"dnscde/internal/campaign"
	"dnscde/internal/clock"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/udpnet"
	"dnscde/internal/zone"
)

// httpShutdownTimeout bounds how long an HTTP server may spend finishing
// in-flight requests during shutdown before being closed hard.
const httpShutdownTimeout = 3 * time.Second

// zoneList collects repeated -zone flags.
type zoneList []string

func (z *zoneList) String() string { return strings.Join(*z, ",") }

// Set implements flag.Value.
func (z *zoneList) Set(v string) error {
	*z = append(*z, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], clock.Real{}, os.Stdout, os.Stderr))
}

// run starts the server. The clock stamping log summaries is injected so
// tests can drive the logging path on virtual time; stdout/stderr are
// injected so lifecycle tests can assert on the startup banner and the
// final summary.
func run(args []string, clk clock.Clock, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cdeserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var zones zoneList
	fs.Var(&zones, "zone", "zone master file to serve (repeatable)")
	var (
		addr     = fs.String("addr", "127.0.0.1:5353", "UDP listen address")
		generate = fs.String("generate", "", "generate the paper's CDE zones under this origin instead of loading files")
		probeQ   = fs.Int("probes", 50, "number of probe records when generating zones")
		logEvery = fs.Duration("log-every", 10*time.Second, "interval for query-log summaries")
		dump     = fs.Bool("dump", false, "print the zones as master files and exit (use with -generate to export)")
		ctl      = fs.String("ctl", "", "enable the DNS control zone under this origin (e.g. ctl.cache.example)")
		mAddr    = fs.String("metrics", "", "HTTP address exporting the accounting snapshot as JSON (e.g. 127.0.0.1:9153); empty disables")
		apiAddr  = fs.String("api", "", "HTTP address for the campaign control plane (e.g. 127.0.0.1:8080); empty disables")
		results  = fs.String("results", "", "directory for campaign JSONL result files (default: a fresh temp dir)")
		shards   = fs.Int("shards", 0, "event-loop shards per campaign run world (0 = auto); results are identical at any value")
		workers  = fs.Int("workers", 0, "trial workers per campaign run (0 = GOMAXPROCS)")
		drain    = fs.Duration("drain", 10*time.Second, "campaign drain budget on shutdown before in-flight runs are cancelled")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *generate != "" && *ctl == "" {
		*ctl = "ctl." + *generate
	}

	loaded, err := loadZones(zones, *generate, *probeQ, *addr)
	if err != nil {
		fmt.Fprintf(stderr, "cdeserver: %v\n", err)
		return 1
	}
	if *dump {
		for _, z := range loaded {
			fmt.Fprintf(stdout, "; zone %s (%d records)\n%s\n", z.Origin(), z.Len(), z.Format())
		}
		return 0
	}
	var opts []authns.Option
	if *ctl != "" {
		opts = append(opts, authns.WithControlZone(*ctl))
		fmt.Fprintf(stdout, "control zone enabled: count.<name>.%s / egress.<suffix>.%s (TXT)\n", *ctl, *ctl)
	}
	reg := metrics.New()
	opts = append(opts, authns.WithMetrics(reg))
	srv := authns.NewServer(loaded, opts...)

	// The signal context exists before anything binds so a signal during
	// startup tears down through the same deferred path as a drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	udp := udpnet.NewServer(srv)
	bound, err := udp.Listen(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "cdeserver: %v\n", err)
		return 1
	}
	// From here on every exit path runs the same teardown, LIFO: campaign
	// API + engine drain, metrics shutdown, TCP close, UDP close, then
	// the final query-log summary. That is the fix for the historical
	// leaks where a TCP-bind or metrics-bind failure returned with the
	// earlier listeners still open and a UDP serve error skipped the
	// summary and left TCP running.
	defer printSummary(stdout, srv)
	defer udp.Close()

	// TCP on the same port for oversize (truncated) responses.
	tcp := udpnet.NewTCPServer(srv)
	if _, err := tcp.Listen(bound.String()); err != nil {
		fmt.Fprintf(stderr, "cdeserver: tcp: %v\n", err)
		return 1
	}
	defer tcp.Close()

	for _, z := range loaded {
		fmt.Fprintf(stdout, "serving %-28s (%d records)\n", z.Origin(), z.Len())
	}
	fmt.Fprintf(stdout, "listening on %v (udp+tcp)\n", bound)

	if *mAddr != "" {
		maddr, ms, err := serveMetrics(reg, *mAddr, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "cdeserver: metrics: %v\n", err)
			return 1
		}
		defer shutdownHTTP(ms, stderr)
		fmt.Fprintf(stdout, "metrics snapshot on http://%v/metrics\n", maddr)
	}

	if *apiAddr != "" {
		engine, err := campaign.NewEngine(campaign.Options{
			Workers: *workers,
			Shards:  *shards,
			Dir:     *results,
			Service: reg,
			Clock:   clk,
		})
		if err != nil {
			fmt.Fprintf(stderr, "cdeserver: campaigns: %v\n", err)
			return 1
		}
		// Pick up campaigns a previous process left mid-flight (SIGTERM,
		// crash) before the API starts accepting new work.
		resumed, err := engine.Resume()
		if err != nil {
			fmt.Fprintf(stderr, "cdeserver: campaigns: %v\n", err)
			return 1
		}
		if len(resumed) > 0 {
			fmt.Fprintf(stdout, "resumed %d interrupted campaign(s)\n", len(resumed))
		}
		aaddr, as, err := serveAPI(engine, *apiAddr, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "cdeserver: campaigns: %v\n", err)
			return 1
		}
		defer drainCampaigns(engine, as, *drain, stderr)
		fmt.Fprintf(stdout, "campaign API on http://%v/campaigns (results in %s)\n", aaddr, engine.Dir())
	}

	go summarize(ctx, srv, *logEvery, clk, stdout)

	// Both DNS listeners serve concurrently; the first serve error or the
	// first signal ends the process through the shared teardown above.
	errc := make(chan error, 2)
	go func() { errc <- udp.Serve(ctx) }()
	go func() { errc <- tcp.Serve(ctx) }()
	return waitServe(ctx, errc, stdout, stderr)
}

// waitServe blocks until the first DNS serve error or a shutdown signal.
// A signal is the clean exit (0); a serve error exits 1. Either way the
// caller's deferred teardown closes both listeners and prints the final
// summary.
func waitServe(ctx context.Context, errc <-chan error, stdout, stderr io.Writer) int {
	select {
	case <-ctx.Done():
		fmt.Fprintf(stdout, "\nshutting down: signal received\n")
		return 0
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(stderr, "cdeserver: %v\n", err)
			return 1
		}
		return 0
	}
}

// drainCampaigns winds the campaign layer down: the API stops accepting
// submissions, in-flight runs get the drain budget to finish, and only
// then is the engine hard-closed if it is still busy.
func drainCampaigns(e *campaign.Engine, as *http.Server, budget time.Duration, stderr io.Writer) {
	shutdownHTTP(as, stderr)
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "cdeserver: campaign drain: %v\n", err)
		e.Close()
	}
}

// shutdownHTTP stops an HTTP server without aborting in-flight requests:
// graceful Shutdown under a short deadline, hard Close only if the
// deadline expires.
func shutdownHTTP(hs *http.Server, stderr io.Writer) {
	ctx, cancel := context.WithTimeout(context.Background(), httpShutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "cdeserver: http shutdown: %v\n", err)
		hs.Close()
	}
}

// loadZones parses master files, or generates the CDE zone pair.
func loadZones(files zoneList, generate string, probeQ int, addr string) ([]*zone.Zone, error) {
	if generate != "" {
		host, err := netip.ParseAddrPort(expandAddr(addr))
		if err != nil {
			return nil, fmt.Errorf("parsing -addr: %w", err)
		}
		self := host.Addr()
		target := netsim.MustAddr("192.0.2.80")
		hier, err := zone.BuildHierarchy(generate, probeQ, target, self, self, 300)
		if err != nil {
			return nil, err
		}
		chain, err := zone.BuildCNAMEChain("chain."+generate, probeQ, target, self, 300)
		if err != nil {
			return nil, err
		}
		return []*zone.Zone{hier.Parent, hier.Child, chain}, nil
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no zones: pass -zone files or -generate origin")
	}
	out := make([]*zone.Zone, 0, len(files))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		z, parseErr := zone.Parse(f, "")
		closeErr := f.Close()
		if parseErr != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, parseErr)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		if err := z.Validate(); err != nil {
			return nil, fmt.Errorf("zone %s: %w", path, err)
		}
		out = append(out, z)
	}
	return out, nil
}

// expandAddr turns ":5353" into "0.0.0.0:5353" so it parses as AddrPort.
func expandAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "0.0.0.0" + addr
	}
	return addr
}

// serveMetrics exports the accounting registry over HTTP, expvar-style:
// GET /metrics returns the full snapshot as JSON. The returned server is
// the teardown handle (shutdownHTTP); the bound address is returned so
// callers (and tests using port 0) know where it landed.
func serveMetrics(reg *metrics.Registry, addr string, stderr io.Writer) (net.Addr, *http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return serveHTTP(mux, addr, "metrics", stderr)
}

// serveAPI hosts the campaign control plane.
func serveAPI(e *campaign.Engine, addr string, stderr io.Writer) (net.Addr, *http.Server, error) {
	return serveHTTP(campaign.NewAPI(e), addr, "campaigns", stderr)
}

// serveHTTP binds addr and serves handler in the background, returning
// the bound address and the server as its shutdown handle.
func serveHTTP(handler http.Handler, addr, name string, stderr io.Writer) (net.Addr, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: handler}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "cdeserver: %s: %v\n", name, err)
		}
	}()
	return ln.Addr(), hs, nil
}

// summarize prints the query-log state periodically. Timestamps come from
// the injected clock; only the flush cadence itself is wall-clock.
func summarize(ctx context.Context, srv *authns.Server, every time.Duration, clk clock.Clock, stdout io.Writer) {
	if every <= 0 {
		return
	}
	//cdelint:allow walltime the periodic flush cadence of a live server is wall-clock by design
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	last := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			n := srv.Log().Len()
			if n != last {
				fmt.Fprintf(stdout, "[%s] %d queries observed (%d distinct sources)\n",
					clk.Now().Format(time.TimeOnly), n, len(srv.Log().DistinctSources("")))
				last = n
			}
		}
	}
}

// printSummary dumps the final log statistics on shutdown.
func printSummary(stdout io.Writer, srv *authns.Server) {
	log := srv.Log()
	fmt.Fprintf(stdout, "\nfinal query log: %d queries\n", log.Len())
	byType := log.CountByType("")
	for t, c := range byType {
		fmt.Fprintf(stdout, "  %-6v %d\n", t, c)
	}
	fmt.Fprintf(stdout, "distinct sources (egress IPs): %v\n", log.DistinctSources(""))
}
