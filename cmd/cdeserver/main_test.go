package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnscde/internal/clock"
	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
)

func TestExpandAddr(t *testing.T) {
	if got := expandAddr(":5353"); got != "0.0.0.0:5353" {
		t.Errorf("expandAddr = %q", got)
	}
	if got := expandAddr("127.0.0.1:53"); got != "127.0.0.1:53" {
		t.Errorf("expandAddr = %q", got)
	}
}

func TestZoneListFlag(t *testing.T) {
	var zl zoneList
	if err := zl.Set("a.zone"); err != nil {
		t.Fatal(err)
	}
	if err := zl.Set("b.zone"); err != nil {
		t.Fatal(err)
	}
	if zl.String() != "a.zone,b.zone" {
		t.Errorf("String = %q", zl.String())
	}
}

func TestLoadZonesGenerate(t *testing.T) {
	zones, err := loadZones(nil, "cache.example", 10, "127.0.0.1:5353")
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 3 {
		t.Fatalf("zones = %d, want parent+child+chain", len(zones))
	}
	origins := map[string]bool{}
	for _, z := range zones {
		origins[z.Origin()] = true
	}
	for _, want := range []string{"cache.example.", "sub.cache.example.", "chain.cache.example."} {
		if !origins[want] {
			t.Errorf("missing zone %q (have %v)", want, origins)
		}
	}
}

func TestLoadZonesGenerateBadAddr(t *testing.T) {
	if _, err := loadZones(nil, "cache.example", 10, "not-an-addr"); err == nil {
		t.Error("bad addr accepted")
	}
}

func TestLoadZonesNoInput(t *testing.T) {
	if _, err := loadZones(nil, "", 10, "127.0.0.1:5353"); err == nil {
		t.Error("no zones accepted")
	}
}

func TestLoadZonesFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.zone")
	content := `$ORIGIN files.example.
$TTL 300
@	IN	SOA	ns.files.example. hostmaster.files.example. 1 7200 3600 1209600 60
@	IN	NS	ns.files.example.
ns	IN	A	192.0.2.1
www	IN	A	192.0.2.2
`
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	zones, err := loadZones(zoneList{path}, "", 0, "127.0.0.1:5353")
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 || zones[0].Origin() != "files.example." {
		t.Fatalf("zones = %v", zones)
	}
	res := zones[0].Lookup("www.files.example.", dnswire.TypeA)
	if len(res.Records) != 1 {
		t.Errorf("www lookup = %+v", res)
	}
}

func TestLoadZonesBadFile(t *testing.T) {
	if _, err := loadZones(zoneList{"/nonexistent/zone"}, "", 0, "127.0.0.1:5353"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.zone")
	if err := os.WriteFile(bad, []byte("$ORIGIN x.example.\n@ IN BOGUS nonsense\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadZones(zoneList{bad}, "", 0, "127.0.0.1:5353"); err == nil {
		t.Error("bad zone accepted")
	}
	// A parseable zone without SOA/NS fails validation.
	invalid := filepath.Join(dir, "invalid.zone")
	if err := os.WriteFile(invalid, []byte("$ORIGIN y.example.\nwww IN A 192.0.2.1\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadZones(zoneList{invalid}, "", 0, "127.0.0.1:5353"); err == nil {
		t.Error("invalid zone accepted")
	}
}

func TestRunDump(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-generate", "cache.example", "-probes", "2", "-dump"}, clock.NewVirtual(), &out, &errOut); code != 0 {
		t.Errorf("-dump exit = %d (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "; zone cache.example.") {
		t.Errorf("dump output missing zone header:\n%s", out.String())
	}
}

func TestServeMetricsSnapshot(t *testing.T) {
	reg := metrics.New()
	reg.Counter("authns.queries").Add(7)

	addr, hs, err := serveMetrics(reg, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("authns.queries"); got != 7 {
		t.Errorf("authns.queries = %d, want 7", got)
	}

	// Graceful shutdown must release the listener without aborting
	// anything in flight.
	shutdownHTTP(hs, io.Discard)
	if _, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
		t.Fatal("metrics listener still serving after shutdown")
	}
	// The port is actually free again.
	ln, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Fatalf("metrics port not released: %v", err)
	}
	ln.Close()
}
