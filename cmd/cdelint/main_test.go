package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a synthetic module for the driver to lint.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module lintfixture\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestRunFailsOnSeededViolation(t *testing.T) {
	// This is the contract the CI Lint step relies on: a fresh
	// determinism leak anywhere in the tree must exit non-zero.
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, root, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[walltime]") {
		t.Errorf("stdout missing walltime finding:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "internal/foo/foo.go") {
		t.Errorf("stdout missing module-relative path:\n%s", stdout.String())
	}
}

func TestRunPassesOnCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

func Nothing() int { return 42 }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunSuppressedViolationPasses(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

import "time"

//cdelint:allow walltime this fixture records real timestamps on purpose
func Stamp() time.Time { return time.Now() }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunSingleDirTarget(t *testing.T) {
	// A plain directory argument lints only that package, not the subtree.
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

func Nothing() int { return 0 }
`,
		"internal/foo/deep/deep.go": `package deep

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./internal/foo"}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("plain dir exit = %d, want 0\nstdout: %s", code, stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./internal/foo/..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("recursive exit = %d, want 1\nstdout: %s", code, stdout.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, t.TempDir(), &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"walltime", "detrand", "ctxflow", "mutexcopy", "goleak", "wiresafe"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestRunNoModuleRoot(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, "/", &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2 (no go.mod above /)", code)
	}
}

// leakyTree is a fixture with exactly one walltime finding.
func leakyTree(t *testing.T) string {
	return writeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
}

func TestRunJSONSchema(t *testing.T) {
	root := leakyTree(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var report struct {
		Version     int `json:"version"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("output is not the v1 schema: %v\n%s", err, stdout.String())
	}
	if report.Version != 1 {
		t.Errorf("version = %d, want 1", report.Version)
	}
	if report.Count != 1 || len(report.Diagnostics) != 1 {
		t.Fatalf("count = %d, len = %d, want 1/1", report.Count, len(report.Diagnostics))
	}
	d := report.Diagnostics[0]
	if d.File != "internal/foo/foo.go" || d.Analyzer != "walltime" || d.Line == 0 || d.Col == 0 || d.Message == "" {
		t.Errorf("diagnostic = %+v", d)
	}
}

func TestRunJSONCleanTreeEmitsEmptyList(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": "package foo\n\nfunc Nothing() int { return 0 }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(stdout.String(), `"diagnostics": []`) {
		t.Errorf("clean tree must serialize an empty array, not null:\n%s", stdout.String())
	}
}

func TestRunAnalyzerSelection(t *testing.T) {
	root := leakyTree(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "errflow", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("-run errflow exit = %d, want 0 (walltime not selected)\nstdout: %s", code, stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-run", "walltime", "./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("-run walltime exit = %d, want 1", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-run", "nonsense", "./..."}, root, &stdout, &stderr); code != 2 {
		t.Fatalf("-run nonsense exit = %d, want 2\nstderr: %s", code, stderr.String())
	}
}

func TestRunBaselineLifecycle(t *testing.T) {
	root := leakyTree(t)
	var stdout, stderr bytes.Buffer

	// Record the debt.
	if code := run([]string{"-baseline", "lint.baseline", "-write-baseline", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(filepath.Join(root, "lint.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "internal/foo/foo.go walltime ") {
		t.Fatalf("baseline missing entry:\n%s", data)
	}

	// Baselined finding no longer fails the run.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", "lint.baseline", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout: %s", code, stdout.String())
	}

	// A second, new finding still fails.
	extra := filepath.Join(root, "internal", "foo", "extra.go")
	if err := os.WriteFile(extra, []byte("package foo\n\nimport \"time\"\n\nfunc Nap() { time.Sleep(time.Second) }\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", "lint.baseline", "./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("new-finding run exit = %d, want 1\nstdout: %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "time.Sleep") || strings.Contains(stdout.String(), "time.Now") {
		t.Errorf("only the new finding should print:\n%s", stdout.String())
	}

	// Fix both findings: the ratchet now rejects the stale entry.
	if err := os.Remove(extra); err != nil {
		t.Fatal(err)
	}
	clean := filepath.Join(root, "internal", "foo", "foo.go")
	if err := os.WriteFile(clean, []byte("package foo\n\nfunc Nothing() int { return 0 }\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", "lint.baseline", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("non-ratchet run exit = %d, want 0 (stale entries tolerated)", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", "lint.baseline", "-ratchet", "./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("ratchet run exit = %d, want 1 (stale entry)\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale baseline entr") {
		t.Errorf("ratchet failure should name the stale entries:\n%s", stderr.String())
	}

	// Paying the debt down (empty baseline) satisfies the ratchet.
	if err := os.WriteFile(filepath.Join(root, "lint.baseline"), []byte("# empty\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", "lint.baseline", "-ratchet", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("clean ratchet exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
}

func TestRunBaselineFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-ratchet", "./..."}, t.TempDir(), &stdout, &stderr); code != 2 {
		t.Fatalf("-ratchet without -baseline exit = %d, want 2", code)
	}
	if code := run([]string{"-write-baseline", "./..."}, t.TempDir(), &stdout, &stderr); code != 2 {
		t.Fatalf("-write-baseline without -baseline exit = %d, want 2", code)
	}
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": "package foo\n\nfunc Nothing() int { return 0 }\n",
	})
	if code := run([]string{"-baseline", "missing.baseline", "./..."}, root, &stdout, &stderr); code != 2 {
		t.Fatalf("missing baseline file exit = %d, want 2", code)
	}
}
