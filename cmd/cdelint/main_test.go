package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a synthetic module for the driver to lint.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module lintfixture\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestRunFailsOnSeededViolation(t *testing.T) {
	// This is the contract the CI Lint step relies on: a fresh
	// determinism leak anywhere in the tree must exit non-zero.
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, root, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[walltime]") {
		t.Errorf("stdout missing walltime finding:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "internal/foo/foo.go") {
		t.Errorf("stdout missing module-relative path:\n%s", stdout.String())
	}
}

func TestRunPassesOnCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

func Nothing() int { return 42 }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunSuppressedViolationPasses(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

import "time"

//cdelint:allow walltime this fixture records real timestamps on purpose
func Stamp() time.Time { return time.Now() }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunSingleDirTarget(t *testing.T) {
	// A plain directory argument lints only that package, not the subtree.
	root := writeTree(t, map[string]string{
		"internal/foo/foo.go": `package foo

func Nothing() int { return 0 }
`,
		"internal/foo/deep/deep.go": `package deep

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./internal/foo"}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("plain dir exit = %d, want 0\nstdout: %s", code, stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./internal/foo/..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("recursive exit = %d, want 1\nstdout: %s", code, stdout.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, t.TempDir(), &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"walltime", "detrand", "ctxflow", "mutexcopy", "goleak", "wiresafe"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestRunNoModuleRoot(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, "/", &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2 (no go.mod above /)", code)
	}
}
