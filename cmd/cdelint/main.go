// Command cdelint runs the repository's static-analysis suite
// (internal/lint): project-specific invariants — deterministic time and
// randomness, context plumbing on blocking I/O, mutex-copy and
// goroutine-leak heuristics, and wire-buffer bounds discipline — that go
// vet cannot express.
//
// Usage:
//
//	cdelint ./...
//	cdelint -list
//	cdelint ./internal/dnswire ./internal/udpnet/...
//
// A `dir/...` argument lints the whole subtree; a plain directory lints
// just that package. Deliberate exceptions are annotated in the source:
//
//	//cdelint:allow walltime socket deadlines are wall-clock by definition
//
// cdelint exits 1 when it reports findings, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dnscde/internal/lint"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdelint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], cwd, os.Stdout, os.Stderr))
}

func run(args []string, cwd string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cdelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets := make([]lint.Target, 0, len(patterns))
	for _, pat := range patterns {
		tgt := lint.Target{Dir: pat}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			tgt.Dir, tgt.Recursive = rest, true
			if tgt.Dir == "" {
				tgt.Dir = "."
			}
		}
		if !filepath.IsAbs(tgt.Dir) {
			tgt.Dir = filepath.Join(cwd, tgt.Dir)
		}
		targets = append(targets, tgt)
	}

	moduleRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "cdelint: %v\n", err)
		return 2
	}
	tree, err := lint.Load(moduleRoot, targets)
	if err != nil {
		fmt.Fprintf(stderr, "cdelint: %v\n", err)
		return 2
	}
	diags := tree.Run(lint.Analyzers())
	for _, d := range diags {
		// Print module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(moduleRoot, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cdelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
