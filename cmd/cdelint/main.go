// Command cdelint runs the repository's static-analysis suite
// (internal/lint): project-specific invariants — deterministic time and
// randomness, context plumbing on blocking I/O, mutex-copy and
// goroutine-leak heuristics, wire-buffer bounds discipline, hot-path
// allocation budgets, enum exhaustiveness, simulated-time purity and
// error-chain hygiene — that go vet cannot express.
//
// Usage:
//
//	cdelint ./...
//	cdelint -list
//	cdelint -run hotalloc,errflow ./internal/dnswire ./internal/udpnet/...
//	cdelint -json ./... > findings.json
//	cdelint -baseline lint.baseline -ratchet ./...
//	cdelint -baseline lint.baseline -write-baseline ./...
//
// A `dir/...` argument lints the whole subtree; a plain directory lints
// just that package. Deliberate exceptions are annotated in the source:
//
//	//cdelint:allow walltime socket deadlines are wall-clock by definition
//
// The baseline file records accepted pre-existing findings as
// line-number-free entries (`<file> <analyzer> <message>`), so findings
// survive unrelated edits that shift line numbers. With -baseline,
// baselined findings are filtered out and only new findings fail the
// run; with -ratchet, entries that no longer match any finding (the debt
// was paid) also fail the run until they are removed from the file —
// the baseline only shrinks. -write-baseline rewrites the file from the
// current findings.
//
// cdelint exits 1 when it reports findings (or a stale ratchet entry),
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dnscde/internal/lint"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdelint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], cwd, os.Stdout, os.Stderr))
}

// jsonReport is the stable machine-readable output schema (version 1).
type jsonReport struct {
	Version     int        `json:"version"`
	Diagnostics []jsonDiag `json:"diagnostics"`
	Count       int        `json:"count"`
}

type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, cwd string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cdelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from current findings and exit")
	ratchet := fs.Bool("ratchet", false, "with -baseline: fail on stale entries that no longer match a finding")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if (*writeBaseline || *ratchet) && *baselinePath == "" {
		fmt.Fprintln(stderr, "cdelint: -write-baseline and -ratchet require -baseline")
		return 2
	}

	analyzers := lint.Analyzers()
	if *runNames != "" {
		var err error
		analyzers, err = lint.Select(*runNames)
		if err != nil {
			fmt.Fprintf(stderr, "cdelint: %v\n", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets := make([]lint.Target, 0, len(patterns))
	for _, pat := range patterns {
		tgt := lint.Target{Dir: pat}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			tgt.Dir, tgt.Recursive = rest, true
			if tgt.Dir == "" {
				tgt.Dir = "."
			}
		}
		if !filepath.IsAbs(tgt.Dir) {
			tgt.Dir = filepath.Join(cwd, tgt.Dir)
		}
		targets = append(targets, tgt)
	}

	moduleRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "cdelint: %v\n", err)
		return 2
	}
	tree, err := lint.Load(moduleRoot, targets)
	if err != nil {
		fmt.Fprintf(stderr, "cdelint: %v\n", err)
		return 2
	}
	diags := tree.Run(analyzers)
	for i := range diags {
		// Print module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(moduleRoot, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}

	if *writeBaseline {
		path := *baselinePath
		if !filepath.IsAbs(path) {
			path = filepath.Join(cwd, path)
		}
		if err := saveBaseline(path, diags); err != nil {
			fmt.Fprintf(stderr, "cdelint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "cdelint: wrote %d baseline entr%s to %s\n",
			len(diags), plural(len(diags), "y", "ies"), *baselinePath)
		return 0
	}

	var stale []string
	if *baselinePath != "" {
		path := *baselinePath
		if !filepath.IsAbs(path) {
			path = filepath.Join(cwd, path)
		}
		accepted, err := loadBaseline(path)
		if err != nil {
			fmt.Fprintf(stderr, "cdelint: %v\n", err)
			return 2
		}
		diags, stale = applyBaseline(diags, accepted)
	}

	if *jsonOut {
		report := jsonReport{Version: 1, Diagnostics: []jsonDiag{}, Count: len(diags)}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "cdelint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}

	failed := false
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cdelint: %d finding(s)\n", len(diags))
		failed = true
	}
	if *ratchet && len(stale) > 0 {
		fmt.Fprintf(stderr, "cdelint: %d stale baseline entr%s (fixed findings still listed — remove them):\n",
			len(stale), plural(len(stale), "y", "ies"))
		for _, entry := range stale {
			fmt.Fprintf(stderr, "  %s\n", entry)
		}
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// baselineKey is the line-number-free identity of a finding: file,
// analyzer and message. Line and column are deliberately excluded so a
// baseline survives unrelated edits above the finding.
func baselineKey(d lint.Diagnostic) string {
	return d.Pos.Filename + " " + d.Analyzer + " " + d.Message
}

// loadBaseline reads accepted findings as a multiset of keys. Blank lines
// and lines starting with '#' are ignored. A missing file is an error —
// passing -baseline asserts the file is part of the checkout.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	accepted := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		accepted[line]++
	}
	return accepted, nil
}

// applyBaseline filters diags through the accepted multiset: each
// matching finding consumes one baseline count. It returns the remaining
// (new) findings and the stale entries whose counts were never consumed.
func applyBaseline(diags []lint.Diagnostic, accepted map[string]int) (fresh []lint.Diagnostic, stale []string) {
	remaining := make(map[string]int, len(accepted))
	for k, n := range accepted {
		remaining[k] = n
	}
	fresh = diags[:0:0]
	for _, d := range diags {
		key := baselineKey(d)
		if remaining[key] > 0 {
			remaining[key]--
			continue
		}
		fresh = append(fresh, d)
	}
	for key, n := range remaining {
		for i := 0; i < n; i++ {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// saveBaseline writes the current findings as a baseline file.
func saveBaseline(path string, diags []lint.Diagnostic) error {
	var b strings.Builder
	b.WriteString("# cdelint baseline: accepted findings, one per line as\n")
	b.WriteString("#   <file> <analyzer> <message>\n")
	b.WriteString("# Entries are line-number-free; remove an entry once the finding is fixed\n")
	b.WriteString("# (the -ratchet flag enforces this). Regenerate with -write-baseline.\n")
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, baselineKey(d))
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
